// Package detflow is the interprocedural companion of detlint.
//
// detlint forbids the three nondeterministic constructs — map range
// iteration, time.Now, the process-seeded global math/rand source — inside
// the prediction packages themselves. That leaves a hole: a core function
// can call a helper in an unrestricted package (kernels, placement, a
// utility package) that hides the same construct one level down, and the
// fixed-point loop silently stops being bit-identical run-to-run.
//
// detflow closes the hole. For each restricted package it builds the
// module-local call graph (internal/analysis/callgraph), collects
// nondeterminism sources in the unrestricted functions of the import
// closure, and taints them through the graph. Every source reachable from a
// function of the package under analysis is reported at the call site where
// the flow leaves the package, with the full call chain and the true source
// location in the message:
//
//	nondeterminism reaches the core: time.Now (at kernels/cpu.go:42);
//	call path: kernels.stamp ← core.refresh; inject the clock
//
// Sources inside restricted packages are detlint's findings and are not
// duplicated here; callees in other restricted packages are not traversed
// (they are vetted when their own package is analysed). A deliberate,
// order-independent escape carries //detflow:ignore with a justification on
// the calling line.
package detflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"pandia/internal/analysis"
	"pandia/internal/analysis/callgraph"
	"pandia/internal/analysis/detlint"
)

// Analyzer is the detflow pass. It runs over the same restricted package
// set as detlint: the two passes together cover the intraprocedural and
// interprocedural halves of the determinism discipline.
var Analyzer = &analysis.Analyzer{
	Name: "detflow",
	Doc: "taint time.Now, global math/rand and map iteration through the module-local " +
		"call graph and report nondeterminism flowing into the prediction core",
	Run:      run,
	Restrict: restricted,
}

// restricted mirrors detlint's package set; a named function breaks the
// initialization cycle Analyzer → run → Analyzer.Restrict.
func restricted(pkgPath string) bool { return detlint.Analyzer.Restrict(pkgPath) }

// source is one nondeterminism origin in an unrestricted function.
type source struct {
	pos    token.Pos
	what   string // "time.Now", "global math/rand call rand.Intn", …
	advice string // the fix, mirroring detlint's wording
}

type checker struct {
	pass     *analysis.Pass
	g        *callgraph.Graph
	sources  map[*callgraph.Node][]source
	tainted  map[*callgraph.Node]bool
	comments map[*ast.File]map[int]string
	reported map[string]bool
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:     pass,
		g:        callgraph.Build(pass),
		sources:  map[*callgraph.Node][]source{},
		comments: map[*ast.File]map[int]string{},
		reported: map[string]bool{},
	}
	for _, n := range c.g.Nodes {
		if c.collectable(n) {
			c.sources[n] = c.collect(n)
		}
	}
	c.tainted = callgraph.Solve(c.g, false, func(n *callgraph.Node, get func(*callgraph.Node) bool) bool {
		if len(c.sources[n]) > 0 {
			return true
		}
		for _, e := range n.Edges {
			for _, callee := range e.Callees {
				if c.traversable(callee) && get(callee) {
					return true
				}
			}
		}
		return false
	})
	for _, n := range c.g.Nodes {
		if n.Decl != nil && n.Pkg.Types == pass.Pkg && !pass.IsTestFile(n.Pos()) {
			c.reportEntry(n)
		}
	}
	return nil
}

// collectable limits source collection to unrestricted, non-test functions
// outside the package under analysis: sources inside restricted packages
// are detlint findings, not flows.
func (c *checker) collectable(n *callgraph.Node) bool {
	if n.Pkg.Types == c.pass.Pkg || c.pass.IsTestFile(n.Pos()) {
		return false
	}
	return !restricted(n.Pkg.Path)
}

// traversable reports whether the taint walk may enter callee: unrestricted
// dependency functions, plus function literals of the package under
// analysis (their enclosing declaration is the entry that owns them).
func (c *checker) traversable(callee *callgraph.Node) bool {
	if callee.Pkg.Types == c.pass.Pkg {
		return callee.Lit != nil
	}
	return !restricted(callee.Pkg.Path)
}

// collect scans one unrestricted function for nondeterminism sources: calls
// to time.Now, calls to unseeded package-level math/rand functions, and map
// range iteration (minus the key-collection idiom).
func (c *checker) collect(n *callgraph.Node) []source {
	var out []source
	for _, e := range n.Edges {
		if e.External == nil {
			continue
		}
		if s, ok := nondetCall(e.External); ok {
			s.pos = e.Pos
			out = append(out, s)
		}
	}
	body := n.Body()
	if body == nil {
		return out
	}
	ast.Inspect(body, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false // a literal is its own node
		}
		rs, ok := x.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := n.Pkg.Info.Types[rs.X].Type
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); isMap && !detlint.IsKeyCollection(rs) {
			out = append(out, source{
				pos:    rs.Pos(),
				what:   "nondeterministic iteration over map " + types.ExprString(rs.X),
				advice: "iterate sorted keys instead",
			})
		}
		return true
	})
	return out
}

// nondetCall classifies an external callee as a nondeterminism source.
func nondetCall(fn *types.Func) (source, bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return source{}, false
	}
	switch pkg.Path() {
	case "time":
		if fn.Name() == "Now" {
			return source{what: "time.Now", advice: "inject the clock"}, true
		}
	case "math/rand", "math/rand/v2":
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() == nil && !detlint.IsSeededRandConstructor(fn.Name()) {
			return source{
				what:   "global math/rand call " + pkg.Name() + "." + fn.Name(),
				advice: "use rand.New(rand.NewSource(seed))",
			}, true
		}
	}
	return source{}, false
}

// ignored reports whether an in-package position's line carries a
// //detflow:ignore directive.
func (c *checker) ignored(pos token.Pos) bool {
	p := c.pass.Fset.Position(pos)
	for _, f := range c.pass.Files {
		fp := c.pass.Fset.Position(f.Pos())
		if fp.Filename != p.Filename {
			continue
		}
		m, ok := c.comments[f]
		if !ok {
			m = analysis.LineComments(c.pass.Fset, f)
			c.comments[f] = m
		}
		return strings.Contains(m[p.Line], "detflow:ignore")
	}
	return false
}

// reportEntry walks the unrestricted closure reachable from one entry and
// reports every nondeterminism source with the call chain back to the
// entry, anchored at the call site where the flow leaves the package.
func (c *checker) reportEntry(entry *callgraph.Node) {
	seen := map[*callgraph.Node]bool{}
	chain := []*callgraph.Node{}

	var visit func(n *callgraph.Node, anchor token.Pos)
	visit = func(n *callgraph.Node, anchor token.Pos) {
		if seen[n] {
			return
		}
		seen[n] = true
		chain = append(chain, n)
		for _, s := range c.sources[n] {
			c.report(entry, anchor, chain, s)
		}
		for _, e := range n.Edges {
			inPass := n.Pkg.Types == c.pass.Pkg
			if inPass && c.ignored(e.Pos) {
				continue
			}
			next := anchor
			if inPass {
				next = e.Pos
			}
			for _, callee := range e.Callees {
				if c.traversable(callee) && c.tainted[callee] {
					visit(callee, next)
				}
			}
		}
		chain = chain[:len(chain)-1]
	}
	visit(entry, entry.Decl.Pos())
}

// report emits one finding at the in-package anchor.
func (c *checker) report(entry *callgraph.Node, anchor token.Pos, chain []*callgraph.Node, s source) {
	p := c.pass.Fset.Position(s.pos)
	parts := make([]string, 0, len(chain))
	for i := len(chain) - 1; i >= 0; i-- {
		parts = append(parts, chain[i].Name())
	}
	msg := "nondeterminism reaches the core: " + s.what +
		" (at " + shortFile(p.Filename) + ":" + itoa(p.Line) + ")" +
		"; call path: " + strings.Join(parts, " ← ") + "; " + s.advice
	key := entry.Name() + "\x00" + p.String() + "\x00" + s.what
	if c.reported[key] {
		return
	}
	c.reported[key] = true
	c.pass.Reportf(anchor, "%s", msg)
}

// shortFile trims a filename to its final two path elements.
func shortFile(name string) string {
	name = strings.ReplaceAll(name, "\\", "/")
	parts := strings.Split(name, "/")
	if len(parts) > 2 {
		parts = parts[len(parts)-2:]
	}
	return strings.Join(parts, "/")
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
