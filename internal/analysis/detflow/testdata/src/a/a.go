// Package a plays the restricted core in the detflow fixtures: every
// finding anchors on a call line here, with the true source in the message.
package a

import (
	"b"
	"math/rand"
)

// UseNow reaches time.Now one call away.
func UseNow() int64 {
	return b.NowStamp() // want `nondeterminism reaches the core: time\.Now \(at b/b\.go:\d+\); call path: b\.NowStamp ← a\.UseNow; inject the clock`
}

// UseRoll reaches the global math/rand source.
func UseRoll() int {
	return b.Roll() // want `global math/rand call rand\.Intn \(at b/b\.go:\d+\); call path: b\.Roll ← a\.UseRoll`
}

// UseSum reaches a hash-order map iteration.
func UseSum(m map[string]int) int {
	return b.Sum(m) // want `nondeterministic iteration over map m \(at b/b\.go:\d+\); call path: b\.Sum ← a\.UseSum; iterate sorted keys instead`
}

// UseDeep reaches time.Now through two unrestricted frames.
func UseDeep() int64 {
	return b.Deep() // want `time\.Now \(at b/b\.go:\d+\); call path: b\.NowStamp ← b\.Deep ← a\.UseDeep`
}

// UseSeeded passes an explicitly seeded generator: clean.
func UseSeeded(r *rand.Rand) int { return b.SeededRoll(r) }

// UseKeys hits only the exempt key-collection idiom: clean.
func UseKeys(m map[string]int) []string { return b.Keys(m) }

// Waived documents a deliberate order-independent escape.
func Waived(m map[string]int) int {
	return b.Sum(m) //detflow:ignore integer sum is order-independent
}

// InLiteral escapes from inside a function literal owned by the entry.
func InLiteral() func() int64 {
	return func() int64 {
		return b.NowStamp() // want `time\.Now \(at b/b\.go:\d+\); call path: b\.NowStamp ← a\.InLiteral\$1 ← a\.InLiteral`
	}
}
