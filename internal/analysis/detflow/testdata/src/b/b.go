// Package b is the unrestricted helper fixture: nondeterminism hides here,
// one call away from the vetted package.
package b

import (
	"math/rand"
	"sort"
	"time"
)

// NowStamp hides a time.Now.
func NowStamp() int64 { return time.Now().UnixNano() }

// Roll hides a global math/rand call.
func Roll() int { return rand.Intn(6) }

// SeededRoll draws from an injected, explicitly seeded generator: clean.
func SeededRoll(r *rand.Rand) int { return r.Intn(6) }

// Sum iterates a map in hash order.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Keys is the canonical key-collection prelude: exempt.
func Keys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Deep buries the source two levels down.
func Deep() int64 { return NowStamp() }
