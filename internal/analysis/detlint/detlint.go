// Package detlint enforces determinism in the predictor's core paths.
//
// The fixed-point loop (§5) must produce bit-identical results run-to-run:
// golden tests, the ablation tables, and cross-machine portability studies
// all diff floating-point outputs exactly. Three Go constructs silently
// break that: map range iteration (random order — and float accumulation is
// not associative, so even "order-independent" sums drift), time.Now, and
// the process-seeded global math/rand source. This pass forbids all three
// inside the prediction packages (internal/core, internal/simhw,
// internal/eval, internal/faults, internal/obs by default) — in particular,
// observability timestamps must come from an injected obs.Clock, never a
// bare time.Now, so recorded traces stay reproducible. Seeded generators
// built with
// rand.New(rand.NewSource(seed)) are fine; test files are exempt; a
// deliberate order-independent iteration can carry a //detlint:ignore
// comment with a justification.
package detlint

import (
	"go/ast"
	"go/types"
	"strings"

	"pandia/internal/analysis"
)

// Analyzer is the detlint pass.
var Analyzer = &analysis.Analyzer{
	Name: "detlint",
	Doc: "forbid nondeterministic constructs (map range, time.Now, global math/rand) " +
		"in the prediction core",
	Run:      run,
	Restrict: analysis.RestrictTo("internal/core", "internal/simhw", "internal/eval", "internal/faults", "internal/obs"),
}

// seededConstructors are the math/rand functions that build explicitly
// seeded generators and are therefore allowed.
var seededConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// IsSeededRandConstructor reports whether a package-level math/rand function
// builds an explicitly seeded generator. Shared with detflow, which applies
// the same policy across the call graph.
func IsSeededRandConstructor(name string) bool { return seededConstructors[name] }

// IsKeyCollection exposes the key-collection exemption to detflow.
func IsKeyCollection(rs *ast.RangeStmt) bool { return isKeyCollection(rs) }

// isKeyCollection recognises the canonical deterministic-iteration prelude —
// `for k := range m { keys = append(keys, k) }` — which is order-independent
// by construction (the keys are sorted before use). The loop must bind only
// the key and its body must be a single append of that key.
func isKeyCollection(rs *ast.RangeStmt) bool {
	if rs.Value != nil || rs.Key == nil || len(rs.Body.List) != 1 {
		return false
	}
	key, ok := rs.Key.(*ast.Ident)
	if !ok {
		return false
	}
	assign, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fun, ok := call.Fun.(*ast.Ident)
	if !ok || fun.Name != "append" {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	return ok && arg.Name == key.Name
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		comments := analysis.LineComments(pass.Fset, f)
		ignored := func(n ast.Node) bool {
			return strings.Contains(comments[pass.Fset.Position(n.Pos()).Line], "detlint:ignore")
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if pass.IsTestFile(n.Pos()) || ignored(n) {
					return true
				}
				t := pass.TypesInfo.Types[n.X].Type
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); isMap && !isKeyCollection(n) {
					pass.Reportf(n.Pos(),
						"nondeterministic iteration over map %s; iterate sorted keys instead",
						types.ExprString(n.X))
				}
			case *ast.CallExpr:
				if pass.IsTestFile(n.Pos()) || ignored(n) {
					return true
				}
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil {
					return true
				}
				switch {
				case fn.Pkg().Path() == "time" && fn.Name() == "Now":
					pass.Reportf(n.Pos(), "time.Now breaks run-to-run determinism; inject the clock")
				case fn.Pkg().Path() == "math/rand" || fn.Pkg().Path() == "math/rand/v2":
					sig, _ := fn.Type().(*types.Signature)
					if sig != nil && sig.Recv() == nil && !seededConstructors[fn.Name()] {
						pass.Reportf(n.Pos(),
							"global math/rand source is process-seeded; use rand.New(rand.NewSource(seed))")
					}
				}
			}
			return true
		})
	}
	return nil
}
