package detlint_test

import (
	"testing"

	"pandia/internal/analysis/analysistest"
	"pandia/internal/analysis/detlint"
)

func TestDetlint(t *testing.T) {
	analysistest.Run(t, "testdata", detlint.Analyzer, "a")
}
