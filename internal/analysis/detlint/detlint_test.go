package detlint_test

import (
	"testing"

	"pandia/internal/analysis/analysistest"
	"pandia/internal/analysis/detlint"
)

func TestDetlint(t *testing.T) {
	analysistest.Run(t, "testdata", detlint.Analyzer, "a")
}

// TestDetlintCoversObservability pins the pass's scope: the observability
// layer records timestamps, so a bare time.Now there would make traces
// irreproducible. It must stay under detlint's restriction (timestamps come
// from an injected obs.Clock instead).
func TestDetlintCoversObservability(t *testing.T) {
	for _, pkg := range []string{
		"pandia/internal/core",
		"pandia/internal/simhw",
		"pandia/internal/eval",
		"pandia/internal/faults",
		"pandia/internal/obs",
	} {
		if !detlint.Analyzer.Restrict(pkg) {
			t.Errorf("detlint does not cover %s", pkg)
		}
	}
	if detlint.Analyzer.Restrict("pandia/cmd/pandia-eval") {
		t.Error("detlint must not restrict cmd/ packages (wall-clock timing lives there)")
	}
}
