package a

// Fixture for detlint: map ranges, time.Now, and global math/rand calls are
// flagged; slice/array/channel ranges, seeded generators, and annotated
// order-independent iterations pass.

import (
	"math/rand"
	"sort"
	"time"
)

func badMapRange(loads map[string]float64) float64 {
	var sum float64
	for _, v := range loads { // want `nondeterministic iteration over map loads`
		sum += v
	}
	return sum
}

func badClockAndRand() (int64, int) {
	t := time.Now().UnixNano()         // want `time\.Now breaks run-to-run determinism`
	n := rand.Intn(10)                 // want `global math/rand source is process-seeded`
	rand.Shuffle(n, func(i, j int) {}) // want `global math/rand`
	return t, n
}

func goodSortedRange(loads map[string]float64) float64 {
	// Key collection followed by sorting is the canonical fix and passes.
	keys := make([]string, 0, len(loads))
	for k := range loads {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += loads[k]
	}
	return sum
}

func goodAnnotatedRange(present map[int]bool) int {
	n := 0
	//detlint:ignore membership count is order-independent over bools
	for range present {
		n++
	}
	return n
}

func goodSeededRand(seed int64, xs []float64) float64 {
	rng := rand.New(rand.NewSource(seed))
	var sum float64
	for _, x := range xs {
		sum += x * rng.Float64()
	}
	return sum
}
