// Package b is the dependency fixture: allocations here must be reported
// re-anchored at the calling line in package a, with the true location in
// the message.
package b

// DeepAlloc allocates out of sight of the annotated caller.
func DeepAlloc() []int {
	return make([]int, 4)
}

// Clean is provably alloc-free.
func Clean(x int) int { return x + 1 }

// Sink is dispatched through in package a; fan-out must reach Grower.
type Sink interface{ Put(int) }

// Grower implements Sink with a growing append.
type Grower struct{ buf []int }

// Put appends, so any Sink dispatch is tainted.
func (g *Grower) Put(v int) { g.buf = append(g.buf, v) }
