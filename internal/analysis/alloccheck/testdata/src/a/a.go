// Package a is the alloccheck fixture: every allocation class Go has,
// reached from annotated entry points.
package a

import (
	"b"
	"fmt"
	"strconv"
)

// Direct hits every builtin allocation source in its own body.
//
//pandia:noalloc
func Direct(s1, s2 string, bs []byte) {
	m := make(map[int]int) // want `make\(map\[int\]int\) allocates`
	m[1] = 2               // want `map insert m\[1\] allocates on insert`
	m[1]++                 // want `map update m\[1\] allocates on insert`
	sl := make([]int, 0)   // want `make\(\[\]int\) allocates`
	sl = append(sl, 1)     // want `append may grow its backing array`
	_ = sl
	p := new(int) // want `new\(int\) allocates`
	_ = p
	_ = s1 + s2       // want `string concatenation allocates`
	_ = []byte(s1)    // want `\[\]byte\(string\) conversion allocates`
	_ = string(bs)    // want `string\(\[\]byte\) conversion allocates`
	_ = []int{1, 2}   // want `slice literal allocates`
	_ = map[int]int{} // want `map literal allocates`
	_ = &pair{}       // want `&composite literal allocates`
}

type pair struct{ x, y int }

type boxer interface{}

// Boxing exercises every interface-boxing position go/types can see.
//
//pandia:noalloc
func Boxing(v int) {
	var x interface{} = v // want `initialisation boxes int into interface\{\}`
	x = v                 // want `assignment boxes int into interface\{\}`
	_ = x
	sinkIface(v)         // want `argument boxes int into interface\{\}`
	_ = []interface{}{v} // want `slice literal allocates` `composite literal boxes int into interface\{\}`
	_ = boxer(v)         // want `conversion boxes int into a\.boxer`
	ch <- v              // want `send boxes int into interface\{\}`
}

var ch = make(chan interface{}, 1)

func sinkIface(interface{}) {}

// RetBox boxes through its result tuple.
//
//pandia:noalloc
func RetBox(v int) interface{} {
	return v // want `return boxes int into interface\{\}`
}

type evt struct {
	tag string
	val interface{}
}

// FieldBox boxes into a struct field at the composite literal.
//
//pandia:noalloc
func FieldBox(n int) evt {
	return evt{tag: "x", val: n} // want `composite literal boxes int into interface\{\}`
}

func sinkVariadic(...interface{}) {}

// Variadic allocates the ...interface{} argument slice plus the box.
//
//pandia:noalloc
func Variadic(n int) {
	sinkVariadic(n) // want `variadic \.\.\.interface\{\} call allocates its argument slice` `argument boxes int into interface\{\}`
}

func spin() {}

// Closures: capturing literals and go statements allocate; static literals
// do not.
//
//pandia:noalloc
func Closures(n int) func() int {
	f := func() int { return n } // want `func literal captures n \(closure allocates\)`
	go spin()                    // want `go statement allocates a new goroutine`
	return f
}

// StaticClosure's literal captures nothing: proven clean, no findings.
//
//pandia:noalloc
func StaticClosure() func() int {
	return func() int { return 42 }
}

// DeferLoop accumulates a defer per iteration.
//
//pandia:noalloc
func DeferLoop(fns []func()) {
	for _, f := range fns {
		defer f() // want `defer inside a loop allocates per iteration` `cannot prove alloc-free: dynamic call through func value f`
	}
}

type ring struct{ n int }

func (r *ring) bump() { r.n++ }

// Bound creates a method-value closure.
//
//pandia:noalloc
func Bound(r *ring) func() {
	return r.bump // want `bound method value \(\*a\.ring\)\.bump allocates`
}

func helper() []int {
	return make([]int, 8) // want `make\(\[\]int\) allocates; .*path: a\.helper ← a\.Trans`
}

// Trans reaches helper's allocation transitively; the report lands on
// helper's line with the chain back to Trans.
//
//pandia:noalloc
func Trans() { _ = helper() }

// Cross reaches an allocation in the dependency package; the report is
// re-anchored to this call with the true location in the message.
//
//pandia:noalloc
func Cross() {
	b.DeepAlloc() // want `make\(\[\]int\) allocates \(at b/b\.go:\d+\); .*path: b\.DeepAlloc ← a\.Cross`
}

// FanOut dispatches through b.Sink; the fan-out reaches Grower's append.
//
//pandia:noalloc
func FanOut(s b.Sink) {
	s.Put(1) // want `append may grow its backing array \(at b/b\.go:\d+\); .*path: \(\*b\.Grower\)\.Put ← a\.FanOut`
}

// External calls land in the classification table: fmt allocates,
// unclassified packages are unprovable.
//
//pandia:noalloc
func External(err error) string {
	return fmt.Sprintf("e: %v", err) // want `call to fmt\.Sprintf allocates`
}

// Unknown cannot be proven: strconv is not in the table.
//
//pandia:noalloc
func Unknown(s string) int {
	n, _ := strconv.Atoi(s) // want `cannot prove alloc-free: external call to strconv\.Atoi`
	return n
}

type remote interface{ Far() }

// NoImpl dispatches through an interface no module type implements.
//
//pandia:noalloc
func NoImpl(r remote) {
	r.Far() // want `cannot prove alloc-free: dynamic call through interface method \(a\.remote\)\.Far \(no module-local implementation\)`
}

// Clean is proven alloc-free end to end: no findings.
//
//pandia:noalloc
func Clean(x int) int { return b.Clean(x) + 1 }

// Suppressed documents a deliberate cold allocation; the reason makes it
// legal.
//
//pandia:noalloc
func Suppressed() {
	buf := make([]byte, 64) //alloccheck:ok one-time warm-up buffer
	_ = buf
}

// ColdPath suppresses the call edge into the cold error constructor.
//
//pandia:noalloc
func ColdPath(fail bool) error {
	if fail {
		return coldErr() //alloccheck:ok error path is cold by construction
	}
	return nil
}

func coldErr() error {
	return fmt.Errorf("cold failure")
}

func badSuppression() {
	_ = make([]int, 1) /*alloccheck:ok*/ // want `//alloccheck:ok needs a reason`
}
