package alloccheck_test

import (
	"testing"

	"pandia/internal/analysis/alloccheck"
	"pandia/internal/analysis/analysistest"
)

func TestAlloccheckFixtures(t *testing.T) {
	analysistest.Run(t, "testdata", alloccheck.Analyzer, "a")
}
