package alloccheck_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pandia/internal/analysis"
	"pandia/internal/analysis/alloccheck"
)

// moduleRoot walks up from the test's working directory to go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}

// runOn loads one package of the module rooted at moduleDir and runs
// alloccheck over it.
func runOn(t *testing.T, moduleDir, path string) ([]analysis.Diagnostic, *analysis.Package) {
	t.Helper()
	l, err := analysis.NewLoader(moduleDir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(alloccheck.Analyzer, pkg)
	if err != nil {
		t.Fatal(err)
	}
	return diags, pkg
}

// TestRealHotPathClean pins the annotated production packages as negative
// cases: the //pandia:noalloc entry points (PredictTime, iterate,
// loadSummary, the metric updates, RingTracer.Emit) are provably
// allocation-free, so alloccheck must stay silent.
func TestRealHotPathClean(t *testing.T) {
	root := moduleRoot(t)
	for _, path := range []string{"pandia/internal/core", "pandia/internal/obs"} {
		diags, pkg := runOn(t, root, path)
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			t.Errorf("unexpected diagnostic in %s: %s:%d: %s",
				path, filepath.Base(pos.Filename), pos.Line, d.Message)
		}
	}
}

// copyModule copies the module's go.mod and every non-test Go file under
// internal/ (skipping analyzer fixture trees) into dst, preserving layout.
func copyModule(t *testing.T, root, dst string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dst, "go.mod"), []byte("module pandia\n\ngo 1.21\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := filepath.Join(root, "internal")
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			if info.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		out := filepath.Join(dst, rel)
		if err := os.MkdirAll(filepath.Dir(out), 0o755); err != nil {
			return err
		}
		return os.WriteFile(out, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSeededAllocRegression injects the canonical hot-path regression — a
// map insert inside the engine's fixed-point iteration — into a copy of the
// module and requires alloccheck to catch it statically, with the call
// chain reaching the annotated PredictTime entry point.
func TestSeededAllocRegression(t *testing.T) {
	root := moduleRoot(t)
	enginePath := filepath.Join(root, "internal", "core", "engine.go")
	src, err := os.ReadFile(enginePath)
	if err != nil {
		t.Fatal(err)
	}
	const anchor = "// (i) Resource contention plus burstiness (§5.1)."
	if !strings.Contains(string(src), anchor) {
		t.Fatalf("could not find the iterate anchor comment %q; did engine.go change?", anchor)
	}
	mutated := strings.Replace(string(src), anchor,
		"regressionScratch[\"iter\"]++\n\t\t"+anchor, 1)
	mutated += "\n// regressionScratch is injected by the seeded alloccheck regression test.\nvar regressionScratch = map[string]int{}\n"

	tmp := t.TempDir()
	copyModule(t, root, tmp)
	if err := os.WriteFile(filepath.Join(tmp, "internal", "core", "engine.go"), []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}

	diags, pkg := runOn(t, tmp, "pandia/internal/core")
	if len(diags) == 0 {
		t.Fatal("seeded map insert in iterate produced no alloccheck diagnostics")
	}
	found := false
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		t.Logf("diagnostic: %s:%d: %s", filepath.Base(pos.Filename), pos.Line, d.Message)
		if strings.Contains(d.Message, "map update regressionScratch") &&
			strings.HasSuffix(d.Message, "← (*core.Predictor).PredictTime") {
			found = true
		}
	}
	if !found {
		t.Error("no diagnostic names the seeded map update with a call chain ending at (*core.Predictor).PredictTime")
	}
}
