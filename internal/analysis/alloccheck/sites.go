package alloccheck

// This file scans one function body for local allocation sites — every
// construct through which Go allocates. The scan is purely syntactic plus
// go/types: it never guesses about escape analysis, so it over-approximates
// (a slice literal that the compiler stack-allocates is still a site);
// deliberate cold-path allocations are suppressed with //alloccheck:ok.

import (
	"go/ast"
	"go/token"
	"go/types"

	"pandia/internal/analysis/callgraph"
)

// collect builds a node's funcInfo: local allocation sites and the call
// edges that survive //alloccheck:ok suppression. Test-file functions
// contribute nothing.
func (c *checker) collect(n *callgraph.Node) *funcInfo {
	in := &funcInfo{}
	if c.pass.IsTestFile(n.Pos()) {
		return in
	}
	for _, e := range n.Edges {
		if !c.suppressed(e.Pos) {
			in.edges = append(in.edges, e)
		}
	}
	s := &siteScan{c: c, n: n, info: n.Pkg.Info, out: in}
	s.results = nodeResults(n)
	s.scan(n.Body(), false)
	return in
}

// nodeResults returns the node's result tuple for return-boxing checks.
func nodeResults(n *callgraph.Node) *types.Tuple {
	var sig *types.Signature
	if n.Func != nil {
		sig, _ = n.Func.Type().(*types.Signature)
	} else if tv, ok := n.Pkg.Info.Types[n.Lit]; ok {
		sig, _ = tv.Type.(*types.Signature)
	}
	if sig == nil {
		return nil
	}
	return sig.Results()
}

type siteScan struct {
	c       *checker
	n       *callgraph.Node
	info    *types.Info
	out     *funcInfo
	results *types.Tuple
}

// add records one site unless its line is suppressed.
func (s *siteScan) add(pos token.Pos, desc string) {
	if s.c.suppressed(pos) {
		return
	}
	s.out.sites = append(s.out.sites, site{pos: pos, desc: desc})
}

func (s *siteScan) typeOf(e ast.Expr) types.Type {
	if tv, ok := s.info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// isMap reports whether e has map type.
func (s *siteScan) isMap(e ast.Expr) bool {
	t := s.typeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// concrete reports whether e is a non-interface, non-nil value — the kind
// that boxes when converted to an interface. Type parameters are excluded:
// whether an instantiation boxes depends on the type argument.
func (s *siteScan) concrete(e ast.Expr) bool {
	tv, ok := s.info.Types[e]
	if !ok || tv.Type == nil || tv.IsNil() {
		return false
	}
	if _, isTP := tv.Type.(*types.TypeParam); isTP {
		return false
	}
	return !types.IsInterface(tv.Type)
}

func isInterface(t types.Type) bool { return t != nil && types.IsInterface(t) }

// shortType renders a type with compressed package qualifiers.
func shortType(t types.Type) string {
	if t == nil {
		return "?"
	}
	return types.TypeString(t, func(p *types.Package) string {
		path := p.Path()
		if i := lastSlash(path); i >= 0 {
			return path[i+1:]
		}
		return path
	})
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}

// scan walks one body. inLoop tracks whether the current statement is
// inside a for/range statement (defers there accumulate per iteration).
// Nested function literals are scanned by their own nodes; here they only
// contribute their capture-by-reference site.
func (s *siteScan) scan(node ast.Node, inLoop bool) {
	ast.Inspect(node, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			if cap := s.captured(x); cap != "" {
				s.add(x.Pos(), "func literal captures "+cap+" (closure allocates)")
			}
			return false
		case *ast.ForStmt:
			if x.Init != nil {
				s.scan(x.Init, inLoop)
			}
			if x.Cond != nil {
				s.scan(x.Cond, inLoop)
			}
			if x.Post != nil {
				s.scan(x.Post, inLoop)
			}
			s.scan(x.Body, true)
			return false
		case *ast.RangeStmt:
			s.scan(x.X, inLoop)
			s.scan(x.Body, true)
			return false
		case *ast.DeferStmt:
			if inLoop {
				s.add(x.Pos(), "defer inside a loop allocates per iteration")
			}
			return true
		case *ast.GoStmt:
			s.add(x.Pos(), "go statement allocates a new goroutine")
			return true
		case *ast.AssignStmt:
			s.assign(x)
			return true
		case *ast.IncDecStmt:
			if idx, ok := x.X.(*ast.IndexExpr); ok && s.isMap(idx.X) {
				s.add(x.Pos(), "map update "+types.ExprString(idx.X)+"["+types.ExprString(idx.Index)+"] allocates on insert")
			}
			return true
		case *ast.GenDecl:
			s.varDecl(x)
			return true
		case *ast.BinaryExpr:
			s.binary(x)
			return true
		case *ast.CallExpr:
			s.call(x)
			return true
		case *ast.CompositeLit:
			s.composite(x)
			return true
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					s.add(x.Pos(), "&composite literal allocates")
				}
			}
			return true
		case *ast.ReturnStmt:
			s.ret(x)
			return true
		case *ast.SendStmt:
			if t := s.typeOf(x.Chan); t != nil {
				if ch, ok := t.Underlying().(*types.Chan); ok && isInterface(ch.Elem()) && s.concrete(x.Value) {
					s.add(x.Value.Pos(), "send boxes "+shortType(s.typeOf(x.Value))+" into "+shortType(ch.Elem()))
				}
			}
			return true
		}
		return true
	})
}

// captured names the first variable a literal captures from its enclosing
// function ("" when it captures nothing; capture-free literals compile to
// static closures and do not allocate).
func (s *siteScan) captured(lit *ast.FuncLit) string {
	name := ""
	ast.Inspect(lit.Body, func(x ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := s.info.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Parent() == nil {
			return true
		}
		// Package-level variables are shared, not captured.
		if v.Parent() == s.n.Pkg.Types.Scope() {
			return true
		}
		// Declared outside the literal's extent → captured.
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			name = v.Name()
		}
		return true
	})
	return name
}

// assign flags map inserts, string +=, and interface-boxing stores.
func (s *siteScan) assign(x *ast.AssignStmt) {
	for _, lhs := range x.Lhs {
		if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && s.isMap(idx.X) {
			s.add(lhs.Pos(), "map insert "+types.ExprString(idx.X)+"["+types.ExprString(idx.Index)+"] allocates on insert")
		}
	}
	if x.Tok == token.ADD_ASSIGN {
		if t := s.typeOf(x.Lhs[0]); t != nil {
			if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				s.add(x.Pos(), "string concatenation allocates")
			}
		}
	}
	if x.Tok != token.ASSIGN || len(x.Lhs) != len(x.Rhs) {
		return
	}
	for i, lhs := range x.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		lt := s.typeOf(lhs)
		if isInterface(lt) && s.concrete(x.Rhs[i]) {
			s.add(x.Rhs[i].Pos(), "assignment boxes "+shortType(s.typeOf(x.Rhs[i]))+" into "+shortType(lt))
		}
	}
}

// varDecl flags interface boxing in `var x I = concrete` declarations.
func (s *siteScan) varDecl(x *ast.GenDecl) {
	if x.Tok != token.VAR {
		return
	}
	for _, spec := range x.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok || vs.Type == nil {
			continue
		}
		t := s.typeOf(vs.Type)
		if !isInterface(t) {
			continue
		}
		for _, v := range vs.Values {
			if s.concrete(v) {
				s.add(v.Pos(), "initialisation boxes "+shortType(s.typeOf(v))+" into "+shortType(t))
			}
		}
	}
}

// binary flags non-constant string concatenation.
func (s *siteScan) binary(x *ast.BinaryExpr) {
	if x.Op != token.ADD {
		return
	}
	tv, ok := s.info.Types[x]
	if !ok || tv.Type == nil || tv.Value != nil { // constants fold at compile time
		return
	}
	if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
		s.add(x.Pos(), "string concatenation allocates")
	}
}

// call flags builtin allocators, allocating conversions, interface-boxing
// arguments and variadic ...interface{} slices.
func (s *siteScan) call(x *ast.CallExpr) {
	fun := ast.Unparen(x.Fun)
	if tv, ok := s.info.Types[x.Fun]; ok && tv.IsType() {
		s.conversion(x, tv.Type)
		return
	}
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := s.info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				s.add(x.Pos(), "make("+shortType(s.typeOf(x))+") allocates")
			case "new":
				s.add(x.Pos(), "new("+shortType(s.typeOf(x.Args[0]))+") allocates")
			case "append":
				s.add(x.Pos(), "append may grow its backing array")
			}
			return
		}
	}
	tv, ok := s.info.Types[x.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	// Skip argument analysis for calls whose external callee is already
	// classified as allocating (fmt.Errorf would otherwise report three
	// findings per call: the call, the variadic slice, and each box).
	if fn := s.staticCallee(fun); fn != nil && s.c.g.NodeOf(fn) == nil {
		if st, _ := externalState(fn); st == allocatesState {
			return
		}
	}
	params := sig.Params()
	nFixed := params.Len()
	if sig.Variadic() {
		nFixed--
		elem, _ := params.At(nFixed).Type().(*types.Slice)
		if elem != nil && isInterface(elem.Elem()) && !x.Ellipsis.IsValid() && len(x.Args) > nFixed {
			s.add(x.Pos(), "variadic ..."+shortType(elem.Elem())+" call allocates its argument slice")
		}
	}
	for i, arg := range x.Args {
		var pt types.Type
		switch {
		case i < nFixed:
			pt = params.At(i).Type()
		case sig.Variadic() && x.Ellipsis.IsValid():
			continue // passing an existing slice through
		case sig.Variadic():
			if sl, ok := params.At(nFixed).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		if isInterface(pt) && s.concrete(arg) {
			s.add(arg.Pos(), "argument boxes "+shortType(s.typeOf(arg))+" into "+shortType(pt))
		}
	}
}

// staticCallee resolves fun to a declared function object, if it is one.
func (s *siteScan) staticCallee(fun ast.Expr) *types.Func {
	switch fun := fun.(type) {
	case *ast.Ident:
		fn, _ := s.info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := s.info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// conversion flags string<->[]byte/[]rune conversions and conversions into
// interface types.
func (s *siteScan) conversion(x *ast.CallExpr, target types.Type) {
	if len(x.Args) != 1 {
		return
	}
	src := s.typeOf(x.Args[0])
	if src == nil {
		return
	}
	if isInterface(target) {
		if s.concrete(x.Args[0]) {
			s.add(x.Pos(), "conversion boxes "+shortType(src)+" into "+shortType(target))
		}
		return
	}
	if isString(target) && isByteOrRuneSlice(src) {
		s.add(x.Pos(), "string("+shortType(src)+") conversion allocates")
		return
	}
	if isByteOrRuneSlice(target) && isString(src) {
		s.add(x.Pos(), shortType(target)+"(string) conversion allocates")
	}
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

// composite flags slice and map literals (always heap-ready backing) and
// interface-typed elements being filled with concrete values.
func (s *siteScan) composite(x *ast.CompositeLit) {
	t := s.typeOf(x)
	if t == nil {
		return
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		s.add(x.Pos(), "slice literal allocates")
		if isInterface(u.Elem()) {
			s.boxedElems(x, u.Elem())
		}
	case *types.Map:
		s.add(x.Pos(), "map literal allocates")
		if isInterface(u.Elem()) {
			s.boxedElems(x, u.Elem())
		}
	case *types.Array:
		if isInterface(u.Elem()) {
			s.boxedElems(x, u.Elem())
		}
	case *types.Struct:
		for i, elt := range x.Elts {
			var ft types.Type
			val := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				val = kv.Value
				if key, ok := kv.Key.(*ast.Ident); ok {
					for f := 0; f < u.NumFields(); f++ {
						if u.Field(f).Name() == key.Name {
							ft = u.Field(f).Type()
							break
						}
					}
				}
			} else if i < u.NumFields() {
				ft = u.Field(i).Type()
			}
			if isInterface(ft) && s.concrete(val) {
				s.add(val.Pos(), "composite literal boxes "+shortType(s.typeOf(val))+" into "+shortType(ft))
			}
		}
	}
}

// boxedElems flags concrete values stored into interface-typed elements.
func (s *siteScan) boxedElems(x *ast.CompositeLit, elem types.Type) {
	for _, elt := range x.Elts {
		val := elt
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			val = kv.Value
		}
		if s.concrete(val) {
			s.add(val.Pos(), "composite literal boxes "+shortType(s.typeOf(val))+" into "+shortType(elem))
		}
	}
}

// ret flags concrete values returned as interface results.
func (s *siteScan) ret(x *ast.ReturnStmt) {
	if s.results == nil || len(x.Results) != s.results.Len() {
		return
	}
	for i, res := range x.Results {
		if isInterface(s.results.At(i).Type()) && s.concrete(res) {
			s.add(res.Pos(), "return boxes "+shortType(s.typeOf(res))+" into "+shortType(s.results.At(i).Type()))
		}
	}
}
