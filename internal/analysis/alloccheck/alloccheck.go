// Package alloccheck statically proves the zero-allocation hot path.
//
// PR 4 pinned Predictor.PredictTime at 0 allocs/op, but until now the only
// guard was the runtime bench-gate: a regression introduced deep in a
// callee — an accidental interface boxing, a stray fmt call, an append that
// can grow — stays invisible until `make bench` runs. alloccheck turns the
// property into a vet-time proof: it builds the module-local call graph
// (internal/analysis/callgraph), computes a per-function allocation summary
// bottom-up over the SCC condensation, and reports every allocation source
// reachable from a function annotated
//
//	//pandia:noalloc
//
// with the full call chain from the allocation back to the annotated entry
// point. The summary lattice is
//
//	alloc-free  <  unknown (dynamic call)  <  allocates
//
// where "unknown" covers calls whose target cannot be named module-locally
// (func values, interfaces without a module implementation) and external
// calls absent from the built-in classification table.
//
// Recognised allocation sources — every way Go allocates:
//
//   - make and new, slice/map composite literals, &T{} literals;
//   - append (the backing array may grow);
//   - map inserts (m[k] = v, m[k]++);
//   - string concatenation and string<->[]byte/[]rune conversions;
//   - interface boxing, detected through go/types at assignments, call
//     arguments, returns, composite-literal elements, channel sends and
//     explicit conversions;
//   - variadic ...interface{} calls (the argument slice plus the boxes);
//   - func literals that capture variables by reference, and bound method
//     values (both carry a closure);
//   - go statements and defers inside loops;
//   - calls into fmt, strings.Builder, errors.New and other external
//     allocators from the classification table.
//
// A deliberate allocation on a cold sub-path (an error return, an opt-in
// debug branch) is suppressed with a trailing
//
//	//alloccheck:ok <reason>
//
// on the allocating line or on the call line that enters the cold path; the
// reason is mandatory. Functions in _test.go files are ignored.
package alloccheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"pandia/internal/analysis"
	"pandia/internal/analysis/callgraph"
)

// Analyzer is the alloccheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "alloccheck",
	Doc: "prove //pandia:noalloc functions allocation-free over the module-local call graph, " +
		"reporting every reachable allocation with its call chain",
	Run: run,
}

// state is the per-function allocation summary lattice.
type state uint8

const (
	allocFree state = iota
	// unknownState marks a function whose allocation behaviour cannot be
	// proven: it performs a dynamic call with no module-local resolution or
	// an unclassified external call.
	unknownState
	// allocatesState marks a function with a definite allocation site (or a
	// callee that has one).
	allocatesState
)

func join(a, b state) state {
	if b > a {
		return b
	}
	return a
}

// site is one local allocation site inside a function body.
type site struct {
	pos  token.Pos
	desc string
}

// funcInfo is a node's local contribution: allocation sites and the edges
// that survive suppression.
type funcInfo struct {
	sites []site
	edges []*callgraph.Edge
}

type checker struct {
	pass *analysis.Pass
	g    *callgraph.Graph
	info map[*callgraph.Node]*funcInfo
	sums map[*callgraph.Node]state
	// directives lazily caches per-file directive line maps across the
	// whole closure, keyed by filename.
	directives map[string]*fileDirectives
	files      map[string]*fileRef
	reported   map[string]bool
}

// fileDirectives records which source lines of one file carry alloccheck
// directives. Like analysis.LineComments, each directive comment marks its
// own line and the following one, covering both the trailing and the
// line-above placement.
type fileDirectives struct {
	noalloc map[int]bool
	ok      map[int]bool
}

// isDirective reports whether the comment is the machine-readable form of
// the named directive: the name directly follows the comment opener, as in
// //pandia:noalloc or /*alloccheck:ok reason*/. Prose that merely quotes a
// directive starts with other text and does not count.
func isDirective(text, name string) bool {
	return strings.HasPrefix(text, "//"+name) || strings.HasPrefix(text, "/*"+name)
}

// fileRef pairs a parsed file with its package for lazy comment lookup.
type fileRef struct {
	pkg  *analysis.Package
	file *ast.File
}

func run(pass *analysis.Pass) error {
	// Fast path: a package that declares no //pandia:noalloc entry point
	// needs no graph. (Suppression hygiene is still checked below for
	// packages that do.)
	if !hasNoallocAnnotation(pass.Files) {
		return nil
	}

	c := &checker{
		pass:       pass,
		g:          callgraph.Build(pass),
		info:       map[*callgraph.Node]*funcInfo{},
		directives: map[string]*fileDirectives{},
		files:      map[string]*fileRef{},
		reported:   map[string]bool{},
	}
	c.indexFiles()
	c.checkSuppressionReasons()

	for _, n := range c.g.Nodes {
		c.info[n] = c.collect(n)
	}
	c.sums = callgraph.Solve(c.g, allocFree, func(n *callgraph.Node, get func(*callgraph.Node) state) state {
		in := c.info[n]
		s := allocFree
		if len(in.sites) > 0 {
			s = allocatesState
		}
		for _, e := range in.edges {
			s = join(s, c.edgeState(e, get))
		}
		return s
	})

	for _, n := range c.g.Nodes {
		if n.Decl == nil || n.Pkg.Types != pass.Pkg || c.pass.IsTestFile(n.Pos()) {
			continue
		}
		if !c.isNoalloc(n) {
			continue
		}
		if c.sums[n] == allocFree {
			continue // proven clean
		}
		c.reportEntry(n)
	}
	return nil
}

// hasNoallocAnnotation scans raw comments for the entry-point marker.
func hasNoallocAnnotation(files []*ast.File) bool {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, cm := range cg.List {
				if isDirective(cm.Text, "pandia:noalloc") {
					return true
				}
			}
		}
	}
	return false
}

// indexFiles records every file of the closure for comment lookup.
func (c *checker) indexFiles() {
	var add func(pkg *analysis.Package)
	seen := map[string]bool{}
	add = func(pkg *analysis.Package) {
		if pkg == nil || seen[pkg.Path] {
			return
		}
		seen[pkg.Path] = true
		for _, f := range pkg.Files {
			c.files[c.pass.Fset.Position(f.Pos()).Filename] = &fileRef{pkg: pkg, file: f}
		}
		for _, dep := range pkg.Imports { //detlint:ignore indexing by filename; order cannot matter
			add(dep)
		}
	}
	root := &analysis.Package{Path: c.pass.Pkg.Path(), Fset: c.pass.Fset, Files: c.pass.Files, Imports: c.pass.Deps}
	add(root)
}

// directivesFor returns (building on first use) the directive line map of
// one file in the closure.
func (c *checker) directivesFor(filename string) *fileDirectives {
	d, cached := c.directives[filename]
	if cached {
		return d
	}
	d = &fileDirectives{noalloc: map[int]bool{}, ok: map[int]bool{}}
	if ref := c.files[filename]; ref != nil {
		for _, cg := range ref.file.Comments {
			for _, cm := range cg.List {
				line := c.pass.Fset.Position(cm.Pos()).Line
				if isDirective(cm.Text, "pandia:noalloc") {
					d.noalloc[line] = true
					d.noalloc[line+1] = true
				}
				if isDirective(cm.Text, "alloccheck:ok") {
					d.ok[line] = true
					d.ok[line+1] = true
				}
			}
		}
	}
	c.directives[filename] = d
	return d
}

// suppressed reports whether pos's line carries an //alloccheck:ok
// directive.
func (c *checker) suppressed(pos token.Pos) bool {
	p := c.pass.Fset.Position(pos)
	return c.directivesFor(p.Filename).ok[p.Line]
}

// checkSuppressionReasons enforces the annotation grammar: every
// //alloccheck:ok in the package under analysis must carry a reason.
func (c *checker) checkSuppressionReasons() {
	for _, f := range c.pass.Files {
		for _, cg := range f.Comments {
			for _, cm := range cg.List {
				if !isDirective(cm.Text, "alloccheck:ok") {
					continue
				}
				reason := strings.TrimSpace(strings.TrimSuffix(cm.Text[2+len("alloccheck:ok"):], "*/"))
				if reason == "" {
					c.pass.Reportf(cm.Pos(), "//alloccheck:ok needs a reason (//alloccheck:ok <why this allocation is acceptable>)")
				}
			}
		}
	}
}

// isNoalloc reports whether the declared function carries //pandia:noalloc,
// either in its doc comment or on the line directly above the declaration.
func (c *checker) isNoalloc(n *callgraph.Node) bool {
	if n.Decl.Doc != nil {
		for _, cm := range n.Decl.Doc.List {
			if isDirective(cm.Text, "pandia:noalloc") {
				return true
			}
		}
	}
	p := c.pass.Fset.Position(n.Decl.Pos())
	return c.directivesFor(p.Filename).noalloc[p.Line]
}

// edgeState classifies one (unsuppressed) edge for the summary solver.
func (c *checker) edgeState(e *callgraph.Edge, get func(*callgraph.Node) state) state {
	if e.External != nil {
		s, _ := externalState(e.External)
		return s
	}
	if e.Unresolved() {
		return unknownState
	}
	s := allocFree
	if e.Kind == callgraph.Ref && e.Bound {
		// Creating the bound method value allocates its receiver closure.
		s = allocatesState
	}
	for _, callee := range e.Callees {
		s = join(s, get(callee))
	}
	return s
}

// inPass reports whether the node's body lives in the package under
// analysis (reports anchor there; see reportAt).
func (c *checker) inPass(n *callgraph.Node) bool { return n.Pkg.Types == c.pass.Pkg }

// reportEntry walks everything reachable from one //pandia:noalloc entry
// and reports each allocation site, allocating external call, and
// unprovable dynamic call, with the call chain back to the entry.
func (c *checker) reportEntry(entry *callgraph.Node) {
	seen := map[*callgraph.Node]bool{}
	chain := []*callgraph.Node{}

	var visit func(n *callgraph.Node, anchor token.Pos)
	visit = func(n *callgraph.Node, anchor token.Pos) {
		if seen[n] {
			return
		}
		seen[n] = true
		chain = append(chain, n)

		in := c.info[n]
		for _, s := range in.sites {
			c.reportAt(entry, n, s.pos, anchor, chain, s.desc)
		}
		for _, e := range in.edges {
			switch {
			case e.External != nil:
				st, desc := externalState(e.External)
				if st != allocFree {
					c.reportAt(entry, n, e.Pos, anchor, chain, desc)
				}
			case e.Unresolved():
				what := "func value " + e.Desc
				if e.Kind == callgraph.Interface {
					what = "interface method " + e.Desc + " (no module-local implementation)"
				}
				c.reportAt(entry, n, e.Pos, anchor, chain, "cannot prove alloc-free: dynamic call through "+what)
			default:
				if e.Kind == callgraph.Ref && e.Bound {
					c.reportAt(entry, n, e.Pos, anchor, chain, "bound method value "+e.Desc+" allocates")
				}
				next := anchor
				if c.inPass(n) {
					next = e.Pos
				}
				for _, callee := range e.Callees {
					if c.sums[callee] != allocFree {
						visit(callee, next)
					}
				}
			}
		}
		chain = chain[:len(chain)-1]
	}
	visit(entry, entry.Decl.Pos())
}

// reportAt emits one finding. Positions outside the package under analysis
// are re-anchored to the last in-package call site, with the true location
// folded into the message, so diagnostics always land on lines of the
// package being vetted.
func (c *checker) reportAt(entry, n *callgraph.Node, pos, anchor token.Pos, chain []*callgraph.Node, desc string) {
	at := pos
	loc := ""
	if !c.inPass(n) {
		at = anchor
		p := c.pass.Fset.Position(pos)
		loc = " (at " + shortFile(p.Filename) + ":" + itoa(p.Line) + ")"
	}
	parts := make([]string, 0, len(chain))
	for i := len(chain) - 1; i >= 0; i-- {
		parts = append(parts, chain[i].Name())
	}
	msg := desc + loc + "; //pandia:noalloc path: " + strings.Join(parts, " ← ")
	key := entry.Name() + "\x00" + c.pass.Fset.Position(pos).String() + "\x00" + desc
	if c.reported[key] {
		return
	}
	c.reported[key] = true
	c.pass.Reportf(at, "%s", msg)
}

// shortFile trims a filename to its final two path elements.
func shortFile(name string) string {
	name = strings.ReplaceAll(name, "\\", "/")
	parts := strings.Split(name, "/")
	if len(parts) > 2 {
		parts = parts[len(parts)-2:]
	}
	return strings.Join(parts, "/")
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// externalState classifies a callee outside the loaded closure (standard
// library). The table is deliberately small: everything the hot path
// legitimately touches is listed as alloc-free, the notorious allocators
// are listed as allocating, and everything else is unknown — which a
// //pandia:noalloc proof treats as a failure, so growing the table is
// always a conscious decision.
func externalState(fn *types.Func) (state, string) {
	name := callgraph.FuncName(fn)
	pkg := fn.Pkg()
	if pkg == nil {
		// Universe-scope methods (error.Error) reached non-dynamically.
		return unknownState, "cannot prove alloc-free: external call to " + name
	}
	switch pkg.Path() {
	case "math", "sync/atomic":
		return allocFree, ""
	case "sync":
		switch fn.Name() {
		case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock", "Add", "Done":
			return allocFree, ""
		}
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Seconds", "Nanoseconds", "Milliseconds", "Microseconds", "Sub", "Unix", "UnixNano":
			return allocFree, ""
		}
	case "fmt":
		return allocatesState, "call to " + name + " allocates"
	case "errors":
		if fn.Name() == "New" {
			return allocatesState, "call to errors.New allocates"
		}
	case "strings":
		if strings.Contains(name, "strings.Builder") {
			return allocatesState, "call to " + name + " allocates"
		}
	case "runtime":
		if fn.Name() == "Gosched" {
			return allocFree, ""
		}
	}
	return unknownState, "cannot prove alloc-free: external call to " + name
}
