// Package a is the guardcheck fixture: annotated fields accessed with and
// without their guards, read-mode violations, entry inference across
// helpers, majority-vote inference, and suppressions.
package a

import "sync"

type Counter struct {
	mu sync.Mutex
	//pandia:guardedby(mu)
	n    int
	name string
}

// New writes through a fresh value: no goroutine can see it yet.
func New(name string) *Counter {
	c := &Counter{name: name}
	c.n = 1
	return c
}

// Name reads an unannotated field that is never mutated: read-only after
// construction, no inference.
func (c *Counter) Name() string { return c.name }

// Inc holds the guard.
func (c *Counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// Racy writes without the guard.
func (c *Counter) Racy() {
	c.n++ // want `guarded field a\.Counter\.n is written in \(\*a\.Counter\)\.Racy without holding \(a\.Counter\)\.mu`
}

// bump is only called under mu: the inferred entry set proves it clean.
func (c *Counter) bump() {
	c.n++
}

// Add locks and delegates to bump.
func (c *Counter) Add() {
	c.mu.Lock()
	c.bump()
	c.mu.Unlock()
}

// leak is called without the lock, so the inference cannot prove it; the
// report names the lock-free call site.
func (c *Counter) leak() {
	c.n++ // want `guarded field a\.Counter\.n is written in \(\*a\.Counter\)\.leak without holding \(a\.Counter\)\.mu; \(a\.Counter\)\.mu is not held on entry \(e\.g\. called from \(\*a\.Counter\)\.Leaky at a\.go:\d+\)`
}

// Leaky calls leak bare.
func (c *Counter) Leaky() {
	c.leak()
}

// Snapshot documents a deliberate bare read.
func (c *Counter) Snapshot() int {
	return c.n //guardcheck:ok approximate metric read, staleness is fine
}

func (c *Counter) badOK() int {
	return c.n /*guardcheck:ok*/ // want `//guardcheck:ok needs a reason`
}

type Gauge struct {
	mu sync.RWMutex
	//pandia:guardedby(mu)
	v int
}

// Read holds the read lock: enough for a read.
func (g *Gauge) Read() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.v
}

// Put writes under the write lock.
func (g *Gauge) Put(v int) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// WeakWrite writes under only the read lock.
func (g *Gauge) WeakWrite(v int) {
	g.mu.RLock()
	g.v = v // want `guarded field a\.Gauge\.v is written in \(\*a\.Gauge\)\.WeakWrite holding only the read lock \(\(a\.Gauge\)\.mu\)`
	g.mu.RUnlock()
}

type Twin struct {
	a sync.Mutex
	b sync.Mutex
	//pandia:guardedby(a, b)
	t int
}

// UnderB satisfies the any-of declaration with the second lock.
func (w *Twin) UnderB() {
	w.b.Lock()
	w.t++
	w.b.Unlock()
}

// Bare holds neither.
func (w *Twin) Bare() {
	w.t++ // want `guarded field a\.Twin\.t is written in \(\*a\.Twin\)\.Bare without holding \(a\.Twin\)\.a or \(a\.Twin\)\.b`
}

type Pool struct {
	mu   sync.Mutex
	free []int
}

// Put accesses free twice under the lock (write + read).
func (p *Pool) Put(v int) {
	p.mu.Lock()
	p.free = append(p.free, v)
	p.mu.Unlock()
}

// Len reads under the lock.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}

// Peek is the odd one out: 3 of 4 accesses hold mu, so the guard is
// inferred and the bare read reported.
func (p *Pool) Peek() int {
	return len(p.free) // want `field a\.Pool\.free is accessed under \(a\.Pool\)\.mu on 3 of 4 sites but is read in \(\*a\.Pool\)\.Peek without it \(inferred guard; annotate with //pandia:guardedby\(mu\) or suppress\)`
}

type Bad struct {
	mu sync.Mutex
	//pandia:guardedby(missing) // want `pandia:guardedby\(missing\): no mutex field "missing" in this struct`
	x int
}

type Bad2 struct {
	mu sync.Mutex
	//pandia:guardedby // want `pandia:guardedby needs a parenthesized lock list`
	y int
}

type Bad3 struct {
	//pandia:guardedby(mu2) // want `pandia:guardedby on a mutex field guards nothing`
	mu  sync.Mutex
	mu2 sync.Mutex
}
