// Package guardcheck enforces guarded-by discipline for struct fields: a
// field declared with
//
//	//pandia:guardedby(mu)
//
// (on the field's doc or trailing comment; multiple comma-separated locks
// have any-of semantics, each naming a sibling mutex by field path) must
// only be read while one of its guards is held, and only be written while
// a guard is write-held. The internal/analysis/locks engine supplies the
// lock set at every access, including locks inherited from callers —
// helper functions whose every call site holds the lock are proven, not
// flagged.
//
// Fields with no annotation are checked by majority vote: if a field of a
// mutex-carrying struct is mutated somewhere and at least three quarters
// of its accesses (and at least three) hold the same sibling mutex, the
// bare accesses are reported as likely missed guards.
//
// Accesses through a freshly constructed local value (the constructor
// idiom: s := &Scheduler{...}; s.tokens = ...) are exempt — no other
// goroutine can reach the object yet. Intended bare accesses are
// suppressed with a trailing
//
//	//guardcheck:ok <reason>
//
// on the reported line (or the line above); the reason is mandatory.
// Findings in _test.go files are ignored.
package guardcheck

import (
	"fmt"
	"go/token"
	"go/types"
	"strings"

	"pandia/internal/analysis"
	"pandia/internal/analysis/locks"
)

// Analyzer is the guardcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "guardcheck",
	Doc:  "check that //pandia:guardedby fields (and majority-vote inferred guarded fields) are only accessed under their lock",
	Run:  run,
	Restrict: analysis.RestrictTo("internal/scheduler", "internal/obs", "internal/eval",
		"internal/faults", "internal/scenario", "internal/core"),
}

// Inference thresholds: a field qualifies for majority-vote guarding when
// at least inferMinGuarded accesses hold the same sibling mutex and the
// guarded sites outnumber the bare ones at least inferRatio to one.
const (
	inferMinGuarded = 3
	inferRatio      = 3
)

type checker struct {
	pass *analysis.Pass
	ok   map[string]map[int]bool
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass, ok: map[string]map[int]bool{}}
	c.collectDirectives()
	c.checkSuppressionReasons()

	res := locks.Analyze(pass)
	for _, d := range res.GuardErrs {
		if !pass.IsTestFile(d.Pos) {
			pass.Report(d)
		}
	}
	c.checkAnnotated(res)
	c.checkInferred(res)
	return nil
}

// checkAnnotated reports accesses of annotated fields outside their
// declared guards.
func (c *checker) checkAnnotated(res *locks.Result) {
	for _, a := range res.Accesses {
		if !a.InRoot || a.Fresh {
			continue
		}
		g := res.GuardOf(a.Field)
		if g == nil {
			continue
		}
		need := locks.ModeRead
		if a.Write {
			need = locks.ModeWrite
		}
		satisfied := false
		readOnly := false
		for _, lp := range g.Locks {
			m := a.GuardMode(lp)
			if m >= need {
				satisfied = true
				break
			}
			if m == locks.ModeRead {
				readOnly = true
			}
		}
		if satisfied {
			continue
		}
		verb := "read"
		if a.Write {
			verb = "written"
		}
		names := make([]string, len(g.Locks))
		for i, lp := range g.Locks {
			names[i] = a.GuardName(lp)
		}
		msg := fmt.Sprintf("guarded field %s.%s is %s in %s without holding %s",
			res.StructDisp(a.Field), a.Field.Name(), verb, a.FnName, strings.Join(names, " or "))
		if readOnly {
			msg = fmt.Sprintf("guarded field %s.%s is %s in %s holding only the read lock (%s)",
				res.StructDisp(a.Field), a.Field.Name(), verb, a.FnName, strings.Join(names, " or "))
		}
		msg += res.EntryNote(a, g.Locks[0])
		c.report(a.Pos, msg)
	}
}

// checkInferred applies majority-vote inference to unannotated fields of
// mutex-carrying structs: votes are counted across the whole closure,
// bare accesses are reported only in this package.
func (c *checker) checkInferred(res *locks.Result) {
	type tally struct {
		field    *types.Var
		accesses []*locks.FieldAccess
		hasWrite bool
	}
	var order []*types.Var
	byField := map[*types.Var]*tally{}
	for _, a := range res.Accesses {
		if a.Fresh {
			continue
		}
		if res.GuardOf(a.Field) != nil || len(res.MutexPaths(a.Field)) == 0 {
			continue
		}
		t := byField[a.Field]
		if t == nil {
			t = &tally{field: a.Field}
			byField[a.Field] = t
			order = append(order, a.Field)
		}
		t.accesses = append(t.accesses, a)
		if a.Write {
			t.hasWrite = true
		}
	}
	for _, fld := range order {
		t := byField[fld]
		// Fields never mutated outside a constructor are read-only after
		// construction; bare reads of those are fine.
		if !t.hasWrite {
			continue
		}
		bestPath := ""
		bestGuarded := -1
		for _, mp := range res.MutexPaths(fld) {
			guarded := 0
			for _, a := range t.accesses {
				if holdsGuard(a, mp) {
					guarded++
				}
			}
			if guarded > bestGuarded {
				bestGuarded = guarded
				bestPath = mp
			}
		}
		bare := len(t.accesses) - bestGuarded
		if bestGuarded < inferMinGuarded || bare == 0 || bestGuarded < inferRatio*bare {
			continue
		}
		for _, a := range t.accesses {
			if !a.InRoot || holdsGuard(a, bestPath) {
				continue
			}
			verb := "read"
			if a.Write {
				verb = "written"
			}
			msg := fmt.Sprintf("field %s.%s is accessed under %s on %d of %d sites but is %s in %s without it (inferred guard; annotate with //pandia:guardedby(%s) or suppress)",
				res.StructDisp(fld), fld.Name(), a.GuardName(bestPath),
				bestGuarded, len(t.accesses), verb, a.FnName, bestPath)
			msg += res.EntryNote(a, bestPath)
			c.report(a.Pos, msg)
		}
	}
}

// holdsGuard reports whether the access holds the guard strongly enough
// for its kind (writes need the write lock, reads either).
func holdsGuard(a *locks.FieldAccess, guardPath string) bool {
	need := locks.ModeRead
	if a.Write {
		need = locks.ModeWrite
	}
	return a.GuardMode(guardPath) >= need
}

// report emits one finding unless it lies in a test file or its line
// carries a //guardcheck:ok suppression.
func (c *checker) report(pos token.Pos, msg string) {
	if c.pass.IsTestFile(pos) || c.suppressed(pos) {
		return
	}
	c.pass.Report(analysis.Diagnostic{Pos: pos, Message: msg})
}

// isDirective reports whether the comment is the machine-readable form of
// the directive (prefix match, so prose quoting it does not count).
func isDirective(text, name string) bool {
	return strings.HasPrefix(text, "//"+name) || strings.HasPrefix(text, "/*"+name)
}

// collectDirectives maps the lines carrying //guardcheck:ok in every
// package file (the comment's own line and the line below).
func (c *checker) collectDirectives() {
	for _, f := range c.pass.Files {
		for _, cg := range f.Comments {
			for _, cm := range cg.List {
				if !isDirective(cm.Text, "guardcheck:ok") {
					continue
				}
				p := c.pass.Fset.Position(cm.Pos())
				m := c.ok[p.Filename]
				if m == nil {
					m = map[int]bool{}
					c.ok[p.Filename] = m
				}
				m[p.Line] = true
				m[p.Line+1] = true
			}
		}
	}
}

func (c *checker) suppressed(pos token.Pos) bool {
	p := c.pass.Fset.Position(pos)
	return c.ok[p.Filename][p.Line]
}

// checkSuppressionReasons enforces that every //guardcheck:ok carries a
// reason.
func (c *checker) checkSuppressionReasons() {
	for _, f := range c.pass.Files {
		for _, cg := range f.Comments {
			for _, cm := range cg.List {
				if !isDirective(cm.Text, "guardcheck:ok") {
					continue
				}
				reason := strings.TrimSpace(strings.TrimSuffix(cm.Text[2+len("guardcheck:ok"):], "*/"))
				if reason == "" {
					c.pass.Reportf(cm.Pos(), "//guardcheck:ok needs a reason (//guardcheck:ok <why this bare access is safe>)")
				}
			}
		}
	}
}
