package guardcheck_test

import (
	"testing"

	"pandia/internal/analysis/analysistest"
	"pandia/internal/analysis/guardcheck"
)

func TestGuardcheckFixtures(t *testing.T) {
	analysistest.Run(t, "testdata", guardcheck.Analyzer, "a")
}
