package guardcheck_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pandia/internal/analysis"
	"pandia/internal/analysis/guardcheck"
)

// concurrencyPackages is the surface guardcheck is restricted to.
var concurrencyPackages = []string{
	"pandia/internal/scheduler",
	"pandia/internal/obs",
	"pandia/internal/eval",
	"pandia/internal/faults",
	"pandia/internal/scenario",
	"pandia/internal/core",
}

// moduleRoot walks up from the test's working directory to go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}

// newLoader builds one loader for the module rooted at moduleDir. Sharing
// it across packages shares type-checked dependencies and the lock engine's
// per-package cache, exactly as the pandia-vet driver does.
func newLoader(t *testing.T, moduleDir string) *analysis.Loader {
	t.Helper()
	l, err := analysis.NewLoader(moduleDir)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// runOn loads one package through the shared loader and runs guardcheck.
func runOn(t *testing.T, l *analysis.Loader, path string) ([]analysis.Diagnostic, *analysis.Package) {
	t.Helper()
	pkg, err := l.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(guardcheck.Analyzer, pkg)
	if err != nil {
		t.Fatal(err)
	}
	return diags, pkg
}

// TestRealGuardedFieldsClean pins the annotated production structs as
// negative cases: every access to a //pandia:guardedby field in the
// scheduler, obs, eval, faults, and scenario packages is provably under its
// lock, so guardcheck must stay silent.
func TestRealGuardedFieldsClean(t *testing.T) {
	l := newLoader(t, moduleRoot(t))
	for _, path := range concurrencyPackages {
		diags, pkg := runOn(t, l, path)
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			t.Errorf("unexpected diagnostic in %s: %s:%d: %s",
				path, filepath.Base(pos.Filename), pos.Line, d.Message)
		}
	}
}

// copyModule copies the module's go.mod and every non-test Go file under
// internal/ (skipping analyzer fixture trees) into dst, preserving layout.
func copyModule(t *testing.T, root, dst string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dst, "go.mod"), []byte("module pandia\n\ngo 1.21\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := filepath.Join(root, "internal")
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			if info.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		out := filepath.Join(dst, rel)
		if err := os.MkdirAll(filepath.Dir(out), 0o755); err != nil {
			return err
		}
		return os.WriteFile(out, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// seededEscape reintroduces the exact bug guardcheck caught in the real
// scheduler (and this PR fixed): a placement strategy implemented as a
// method value stored in a strategy table. The escape pins the method's
// entry lock set to ∅ — the analysis cannot assume callers hold s.mu — so
// its bare read of the guarded occupancy map must be reported. The fix in
// the real code snapshots the occupancy under the lock and passes it to a
// pure function; this fixture keeps the pre-fix shape from coming back.
const seededEscape = `package scheduler

import (
	"pandia/internal/placement"
	"pandia/internal/topology"
)

var regressionStrategies = []struct {
	name string
	fn   func([]topology.Context, int, topology.Machine) placement.Placement
}{}

func (s *Scheduler) regressionRegister() {
	regressionStrategies = append(regressionStrategies, struct {
		name string
		fn   func([]topology.Context, int, topology.Machine) placement.Placement
	}{"quiet-socket", s.regressionQuietSocket})
}

func (s *Scheduler) regressionQuietSocket(free []topology.Context, n int, m topology.Machine) placement.Placement {
	busy := make([]int, m.Sockets)
	for c := range s.occupied {
		busy[c.Socket]++
	}
	if len(free) < n || len(busy) == 0 {
		return nil
	}
	return nil
}
`

// TestSeededMethodValueRegression injects the pre-fix strategy shape and
// requires guardcheck to flag the unguarded read of the occupancy map.
func TestSeededMethodValueRegression(t *testing.T) {
	root := moduleRoot(t)
	tmp := t.TempDir()
	copyModule(t, root, tmp)
	inj := filepath.Join(tmp, "internal", "scheduler", "zz_regression.go")
	if err := os.WriteFile(inj, []byte(seededEscape), 0o644); err != nil {
		t.Fatal(err)
	}

	diags, pkg := runOn(t, newLoader(t, tmp), "pandia/internal/scheduler")
	if len(diags) == 0 {
		t.Fatal("seeded method-value escape produced no guardcheck diagnostics")
	}
	found := false
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		t.Logf("diagnostic: %s:%d: %s", filepath.Base(pos.Filename), pos.Line, d.Message)
		if strings.Contains(d.Message, "guarded field scheduler.Scheduler.occupied is read in (*scheduler.Scheduler).regressionQuietSocket without holding (scheduler.Scheduler).mu") {
			found = true
			if filepath.Base(pos.Filename) != "zz_regression.go" {
				t.Errorf("diagnostic anchored at %s, want zz_regression.go", pos.Filename)
			}
		}
	}
	if !found {
		t.Error("no diagnostic names the bare read of Scheduler.occupied in the escaped method value")
	}
}
