package leakcheck_test

import (
	"testing"

	"pandia/internal/analysis/analysistest"
	"pandia/internal/analysis/leakcheck"
)

func TestLeakcheck(t *testing.T) {
	analysistest.Run(t, "testdata", leakcheck.Analyzer, "a")
}
