// Package leakcheck is the goroutine-lifetime pass of pandia-vet. The
// scheduler, the evaluation harness and the fault injector all spawn worker
// goroutines; a goroutine that blocks on a channel forever after its
// consumer has given up is an unbounded resource leak that no test notices
// until the race detector times out.
//
// leakcheck inspects every `go func(){...}()` literal and asks whether the
// goroutine's exit is tied to something:
//
//   - a sync.WaitGroup Done (the spawner can Wait for it);
//   - a context Done channel (cancellation reaches it);
//   - ranging over a channel (a close releases it);
//   - a receive from a channel with a comma-ok or inside a select that also
//     has a Done/return case.
//
// Untied goroutines are reported when they can block indefinitely: a
// channel send or receive inside a loop, or an infinite `for {}` with no
// return/break. Goroutines spawned as `go name(...)` are not analysed (the
// callee's body may be in another package); the runtime leaktest helper
// (internal/analysis/leaktest) covers those dynamically.
//
// A finding can be suppressed with //leakcheck:ok.
package leakcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"pandia/internal/analysis"
)

// Analyzer is the leakcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "leakcheck",
	Doc: "flag goroutine literals whose exit is not tied to a WaitGroup, context Done, " +
		"or channel close, and that can block forever on channel operations or spin in for{}",
	Run: run,
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass, suppress: make(map[string]map[int]bool)}
	for _, f := range pass.Files {
		lines := analysis.LineComments(pass.Fset, f)
		m := make(map[int]bool)
		for line, text := range lines {
			if strings.Contains(text, "leakcheck:ok") {
				m[line] = true
			}
		}
		c.suppress[pass.Fset.Position(f.Pos()).Filename] = m
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := gs.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			c.checkGoroutine(gs, lit)
			return true
		})
	}
	return nil
}

type checker struct {
	pass     *analysis.Pass
	suppress map[string]map[int]bool
}

func (c *checker) report(pos token.Pos, format string, args ...any) {
	p := c.pass.Fset.Position(pos)
	if m, ok := c.suppress[p.Filename]; ok && m[p.Line] {
		return
	}
	if c.pass.IsTestFile(pos) {
		return
	}
	c.pass.Reportf(pos, format, args...)
}

func (c *checker) checkGoroutine(gs *ast.GoStmt, lit *ast.FuncLit) {
	if c.tied(lit.Body) {
		return
	}
	if pos, what, risky := c.blocking(lit.Body); risky {
		c.report(pos, "goroutine may leak: %s, and exit is not tied to a WaitGroup, context, or channel close", what)
	}
}

// tied reports whether the goroutine body contains an exit-tie signal.
func (c *checker) tied(body *ast.BlockStmt) bool {
	tied := false
	ast.Inspect(body, func(n ast.Node) bool {
		if tied {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // nested goroutine literals judged separately
		case *ast.CallExpr:
			if c.isWaitGroupDone(n) || c.isContextDone(n) {
				tied = true
				return false
			}
		case *ast.RangeStmt:
			// Ranging over a channel ends when the channel is closed.
			if t := c.typeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					tied = true
					return false
				}
			}
		}
		return true
	})
	return tied
}

// blocking finds an operation that can block the goroutine forever: a
// channel send/receive inside a loop, or an infinite for{} with no exit.
func (c *checker) blocking(body *ast.BlockStmt) (token.Pos, string, bool) {
	var pos token.Pos
	what := ""
	var inspect func(n ast.Node, inLoop bool)
	inspect = func(n ast.Node, inLoop bool) {
		if what != "" || n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return
		case *ast.ForStmt:
			// Prefer the channel-operation finding: it names the blocking
			// site, which is more actionable than "the loop never ends".
			ast.Inspect(n.Body, func(x ast.Node) bool {
				if what != "" {
					return false
				}
				if _, ok := x.(*ast.FuncLit); ok {
					return false
				}
				if p, k, ok := chanOpIn(x); ok {
					pos, what = p, "channel "+k+" inside a loop"
					return false
				}
				return true
			})
			if what == "" && n.Cond == nil && !hasExit(n.Body) {
				pos, what = n.Pos(), "infinite for loop with no return or break"
			}
			return
		case *ast.RangeStmt:
			ast.Inspect(n.Body, func(x ast.Node) bool {
				if what != "" {
					return false
				}
				if _, ok := x.(*ast.FuncLit); ok {
					return false
				}
				if p, k, ok := chanOpIn(x); ok {
					pos, what = p, "channel "+k+" inside a loop"
					return false
				}
				return true
			})
			return
		case *ast.BlockStmt:
			for _, s := range n.List {
				inspect(s, inLoop)
			}
			return
		case *ast.IfStmt:
			inspect(n.Body, inLoop)
			if n.Else != nil {
				inspect(n.Else, inLoop)
			}
			return
		}
	}
	inspect(body, false)
	return pos, what, what != ""
}

// hasExit reports whether a loop body contains a return, break, or goto that
// can leave the loop (conservatively: any return/break/goto, or a select
// case that returns).
func hasExit(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			found = true
			return false
		case *ast.BranchStmt:
			if n.Tok == token.BREAK || n.Tok == token.GOTO {
				found = true
				return false
			}
		case *ast.CallExpr:
			// panic/runtime.Goexit terminate the goroutine too.
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "panic" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// chanOpIn matches a channel send or blocking receive at node x.
func chanOpIn(x ast.Node) (token.Pos, string, bool) {
	switch x := x.(type) {
	case *ast.SendStmt:
		return x.Arrow, "send", true
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			return x.OpPos, "receive", true
		}
	}
	return token.NoPos, "", false
}

func (c *checker) typeOf(e ast.Expr) types.Type {
	if tv, ok := c.pass.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// isWaitGroupDone matches wg.Done() / wg.Wait() on a *sync.WaitGroup.
func (c *checker) isWaitGroupDone(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Done" && sel.Sel.Name != "Wait") {
		return false
	}
	t := c.typeOf(sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup"
}

// isContextDone matches ctx.Done() on a context.Context.
func (c *checker) isContextDone(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	t := c.typeOf(sel.X)
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		strings.HasSuffix(named.Obj().Pkg().Path(), "context") && named.Obj().Name() == "Context"
}
