package a

// Fixture for leakcheck: goroutine literals must tie their exit to a
// WaitGroup, a context, or a channel close; untied goroutines doing channel
// work in loops (or spinning forever) are flagged.

import (
	"context"
	"sync"
)

func leakyFeeder(n int) chan int {
	idx := make(chan int)
	go func() {
		for i := 0; i < n; i++ {
			idx <- i // want `goroutine may leak: channel send inside a loop`
		}
		close(idx)
	}()
	return idx
}

func leakyDrain(ch chan int) {
	go func() {
		for {
			v := <-ch // want `goroutine may leak: channel receive inside a loop`
			_ = v
		}
	}()
}

func spinner() {
	go func() {
		for { // want `goroutine may leak: infinite for loop with no return or break`
		}
	}()
}

func tiedWaitGroup(n int) {
	var wg sync.WaitGroup
	ch := make(chan int)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			ch <- i // ok: Done ties the goroutine to the spawner's Wait
		}
	}()
	go func() {
		for range ch {
		}
	}()
	wg.Wait()
	close(ch)
}

func tiedContext(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-ch:
				_ = v
			}
		}
	}()
}

func tiedRange(ch chan int) {
	go func() {
		for v := range ch { // ok: close(ch) releases the loop
			_ = v
		}
	}()
}

func straightLine(ch chan int) {
	go func() {
		ch <- 1 // ok: single send outside a loop is the result-handoff idiom
	}()
}

func suppressed(ch chan int) {
	go func() {
		for {
			ch <- 1 //leakcheck:ok
		}
	}()
}

func namedCallee(f func()) {
	go f() // not analysed: body unknown, covered by the runtime leaktest helper
}
