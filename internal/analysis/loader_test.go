package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"runtime"
	"testing"
)

// moduleRoot finds the repository root relative to this source file.
func moduleRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

func TestLoaderLoadsModulePackage(t *testing.T) {
	l, err := NewLoader(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.Load("pandia/internal/core")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Types.Name() != "core" {
		t.Fatalf("got package %q, want core", pkg.Types.Name())
	}
	if len(pkg.Files) == 0 {
		t.Fatal("no files loaded")
	}
	// Type info must be populated: find a map range somewhere to prove
	// expression types resolve.
	typed := 0
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				if tv, ok := pkg.Info.Types[e]; ok && tv.Type != types.Typ[types.Invalid] {
					typed++
				}
			}
			return true
		})
	}
	if typed == 0 {
		t.Fatal("no typed expressions recorded")
	}
}

func TestLoaderModulePackages(t *testing.T) {
	l, err := NewLoader(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.ModulePackages()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"pandia":                 false,
		"pandia/internal/core":   false,
		"pandia/internal/eval":   false,
		"pandia/internal/simhw":  false,
		"pandia/cmd/pandia-vet":  true, // may not exist yet while bootstrapping
		"pandia/internal/stress": false,
	}
	seen := make(map[string]bool, len(pkgs))
	for _, p := range pkgs {
		seen[p] = true
	}
	for p, optional := range want {
		if !seen[p] && !optional {
			t.Errorf("ModulePackages missing %s (got %v)", p, pkgs)
		}
	}
}
