// Package deadlockcheck detects potential deadlocks interprocedurally,
// generalizing lockcheck's single-function rules across the module-local
// call graph via the internal/analysis/locks engine:
//
//   - lock-order inversions: every acquisition of lock B while lock A is
//     held (in any function, through any call chain) contributes an edge
//     A → B to a global lock-acquisition-order graph; a cycle in that
//     graph means two goroutines can acquire the same locks in opposite
//     orders and deadlock. Each cycle is reported once, with a call-chain
//     witness per edge.
//   - interprocedural double-locks: a helper that (re-)acquires a mutex
//     some caller already holds, which self-deadlocks because sync
//     mutexes are not re-entrant. The purely local case is lockcheck's.
//   - blocking under a lock: a channel send/receive, WaitGroup/Cond Wait,
//     time.Sleep, net/http or os/exec call reached (directly or through
//     callees) while a lock is held, stalling every other goroutine that
//     needs the lock.
//
// A finding that is intended behavior (e.g. a deliberately-held lock
// around a bounded channel handoff) is suppressed with a trailing
//
//	//deadlockcheck:ok <reason>
//
// on the reported line (or the line above); the reason is mandatory.
// Findings in _test.go files are ignored.
package deadlockcheck

import (
	"fmt"
	"go/token"
	"sort"
	"strings"

	"pandia/internal/analysis"
	"pandia/internal/analysis/locks"
)

// Analyzer is the deadlockcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "deadlockcheck",
	Doc:  "detect lock-order inversions, interprocedural double-locks, and blocking calls under a lock",
	Run:  run,
	Restrict: analysis.RestrictTo("internal/scheduler", "internal/obs", "internal/eval",
		"internal/faults", "internal/scenario", "internal/core"),
}

type checker struct {
	pass *analysis.Pass
	ok   map[string]map[int]bool // filename -> lines carrying //deadlockcheck:ok
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass, ok: map[string]map[int]bool{}}
	c.collectDirectives()
	c.checkSuppressionReasons()

	res := locks.Analyze(pass)
	c.reportCycles(res)
	for _, f := range res.Doubles {
		c.report(f.Pos, f.Message)
	}
	for _, f := range res.Blocking {
		c.report(f.Pos, f.Message)
	}
	return nil
}

// reportCycles finds the strongly connected components of the global
// lock-order graph and reports each cyclic one, anchored at its first
// in-package witness edge.
func (c *checker) reportCycles(res *locks.Result) {
	for _, group := range cyclicGroups(res.OrderEdges) {
		sort.Slice(group, func(i, j int) bool {
			if group[i].From.String() != group[j].From.String() {
				return group[i].From.String() < group[j].From.String()
			}
			return group[i].To.String() < group[j].To.String()
		})
		var anchor *locks.OrderEdge
		for i := range group {
			if group[i].InRoot {
				anchor = &group[i]
				break
			}
		}
		if anchor == nil {
			continue // fully outside this package; its own pass reports it
		}
		var names []string
		seen := map[string]bool{}
		for _, ed := range group {
			for _, id := range []string{ed.From.String(), ed.To.String()} {
				if !seen[id] {
					seen[id] = true
					names = append(names, id)
				}
			}
		}
		sort.Strings(names)
		clauses := make([]string, len(group))
		for i, ed := range group {
			clauses[i] = fmt.Sprintf("holding %s, %s is acquired via %s (%s)",
				ed.From, ed.To, ed.Chain, res.PosLabel(ed.AcqPos))
		}
		c.report(anchor.Pos, fmt.Sprintf("potential lock-order inversion among %s: %s",
			strings.Join(names, ", "), strings.Join(clauses, "; ")))
	}
}

// cyclicGroups returns, for every cyclic SCC of the lock-order graph, the
// edges inside it (Tarjan, deterministic in edge order).
func cyclicGroups(edges []locks.OrderEdge) [][]locks.OrderEdge {
	var nodes []locks.LockID
	index := map[locks.LockID]int{}
	nodeOf := func(id locks.LockID) int {
		if i, ok := index[id]; ok {
			return i
		}
		index[id] = len(nodes)
		nodes = append(nodes, id)
		return len(nodes) - 1
	}
	adj := map[int][]int{}
	for _, ed := range edges {
		f, t := nodeOf(ed.From), nodeOf(ed.To)
		adj[f] = append(adj[f], t)
	}

	// Iterative Tarjan.
	const unvisited = -1
	idx := make([]int, len(nodes))
	low := make([]int, len(nodes))
	onStack := make([]bool, len(nodes))
	for i := range idx {
		idx[i] = unvisited
	}
	var stack []int
	next := 0
	comp := make([]int, len(nodes))
	for i := range comp {
		comp[i] = unvisited
	}
	ncomp := 0

	type frame struct{ v, ei int }
	var dfs func(root int)
	dfs = func(root int) {
		frames := []frame{{root, 0}}
		for len(frames) > 0 {
			fr := &frames[len(frames)-1]
			v := fr.v
			if fr.ei == 0 {
				idx[v] = next
				low[v] = next
				next++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			for fr.ei < len(adj[v]) {
				w := adj[v][fr.ei]
				fr.ei++
				if idx[w] == unvisited {
					frames = append(frames, frame{w, 0})
					advanced = true
					break
				}
				if onStack[w] && idx[w] < low[v] {
					low[v] = idx[w]
				}
			}
			if advanced {
				continue
			}
			if low[v] == idx[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = ncomp
					if w == v {
						break
					}
				}
				ncomp++
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
		}
	}
	for i := range nodes {
		if idx[i] == unvisited {
			dfs(i)
		}
	}

	size := map[int]int{}
	for _, cp := range comp {
		size[cp]++
	}
	groups := map[int][]locks.OrderEdge{}
	var order []int
	for _, ed := range edges {
		f, t := index[ed.From], index[ed.To]
		if comp[f] != comp[t] || size[comp[f]] < 2 {
			continue
		}
		if _, ok := groups[comp[f]]; !ok {
			order = append(order, comp[f])
		}
		groups[comp[f]] = append(groups[comp[f]], ed)
	}
	out := make([][]locks.OrderEdge, 0, len(order))
	for _, cp := range order {
		out = append(out, groups[cp])
	}
	return out
}

// report emits one finding unless it lies in a test file or its line
// carries a //deadlockcheck:ok suppression.
func (c *checker) report(pos token.Pos, msg string) {
	if c.pass.IsTestFile(pos) || c.suppressed(pos) {
		return
	}
	c.pass.Report(analysis.Diagnostic{Pos: pos, Message: msg})
}

// isDirective reports whether the comment is the machine-readable form of
// the directive (prefix match, so prose quoting it does not count).
func isDirective(text, name string) bool {
	return strings.HasPrefix(text, "//"+name) || strings.HasPrefix(text, "/*"+name)
}

// collectDirectives maps the lines carrying //deadlockcheck:ok in every
// package file (the comment's own line and the line below, matching the
// trailing and line-above placements).
func (c *checker) collectDirectives() {
	for _, f := range c.pass.Files {
		for _, cg := range f.Comments {
			for _, cm := range cg.List {
				if !isDirective(cm.Text, "deadlockcheck:ok") {
					continue
				}
				p := c.pass.Fset.Position(cm.Pos())
				m := c.ok[p.Filename]
				if m == nil {
					m = map[int]bool{}
					c.ok[p.Filename] = m
				}
				m[p.Line] = true
				m[p.Line+1] = true
			}
		}
	}
}

func (c *checker) suppressed(pos token.Pos) bool {
	p := c.pass.Fset.Position(pos)
	return c.ok[p.Filename][p.Line]
}

// checkSuppressionReasons enforces that every //deadlockcheck:ok carries a
// reason: silent suppressions hide intent from the next reader.
func (c *checker) checkSuppressionReasons() {
	for _, f := range c.pass.Files {
		for _, cg := range f.Comments {
			for _, cm := range cg.List {
				if !isDirective(cm.Text, "deadlockcheck:ok") {
					continue
				}
				reason := strings.TrimSpace(strings.TrimSuffix(cm.Text[2+len("deadlockcheck:ok"):], "*/"))
				if reason == "" {
					c.pass.Reportf(cm.Pos(), "//deadlockcheck:ok needs a reason (//deadlockcheck:ok <why this locking is safe>)")
				}
			}
		}
	}
}
