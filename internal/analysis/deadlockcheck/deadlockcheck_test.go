package deadlockcheck_test

import (
	"testing"

	"pandia/internal/analysis/analysistest"
	"pandia/internal/analysis/deadlockcheck"
)

func TestDeadlockcheckFixtures(t *testing.T) {
	analysistest.Run(t, "testdata", deadlockcheck.Analyzer, "a")
}
