package deadlockcheck_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pandia/internal/analysis"
	"pandia/internal/analysis/deadlockcheck"
	"pandia/internal/analysis/guardcheck"
)

// concurrencyPackages is the surface both lock passes are restricted to.
var concurrencyPackages = []string{
	"pandia/internal/scheduler",
	"pandia/internal/obs",
	"pandia/internal/eval",
	"pandia/internal/faults",
	"pandia/internal/scenario",
	"pandia/internal/core",
}

// moduleRoot walks up from the test's working directory to go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}

// newLoader builds one loader for the module rooted at moduleDir. Sharing
// it across packages shares type-checked dependencies and the lock engine's
// per-package cache, exactly as the pandia-vet driver does.
func newLoader(t *testing.T, moduleDir string) *analysis.Loader {
	t.Helper()
	l, err := analysis.NewLoader(moduleDir)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// runOn loads one package through the shared loader and runs the analyzer.
func runOn(t *testing.T, a *analysis.Analyzer, l *analysis.Loader, path string) ([]analysis.Diagnostic, *analysis.Package) {
	t.Helper()
	pkg, err := l.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(a, pkg)
	if err != nil {
		t.Fatal(err)
	}
	return diags, pkg
}

// TestRealConcurrencySurfaceClean pins the production packages as negative
// cases: the scheduler's single-mutex discipline, the obs tracer/clock
// nesting, and the fault injectors are provably inversion- and
// blocking-free, so deadlockcheck must stay silent.
func TestRealConcurrencySurfaceClean(t *testing.T) {
	l := newLoader(t, moduleRoot(t))
	for _, path := range concurrencyPackages {
		diags, pkg := runOn(t, deadlockcheck.Analyzer, l, path)
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			t.Errorf("unexpected diagnostic in %s: %s:%d: %s",
				path, filepath.Base(pos.Filename), pos.Line, d.Message)
		}
	}
}

// TestLockPassesBudget keeps the interprocedural engine's cost visible:
// both passes over the full restricted surface, loaded the way pandia-vet
// loads it, must finish well inside a gate-sized budget. Measured cost is
// a few seconds; the budget absorbs slow CI.
func TestLockPassesBudget(t *testing.T) {
	root := moduleRoot(t)
	start := time.Now()
	l := newLoader(t, root)
	for _, path := range concurrencyPackages {
		runOn(t, deadlockcheck.Analyzer, l, path)
		runOn(t, guardcheck.Analyzer, l, path)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("deadlockcheck+guardcheck over %d packages took %v (budget 30s)",
			len(concurrencyPackages), elapsed)
	}
}

// copyModule copies the module's go.mod and every non-test Go file under
// internal/ (skipping analyzer fixture trees) into dst, preserving layout.
func copyModule(t *testing.T, root, dst string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dst, "go.mod"), []byte("module pandia\n\ngo 1.21\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := filepath.Join(root, "internal")
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			if info.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		out := filepath.Join(dst, rel)
		if err := os.MkdirAll(filepath.Dir(out), 0o755); err != nil {
			return err
		}
		return os.WriteFile(out, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// seededInversion is a two-function lock-order inversion injected into a
// copy of the scheduler package: forward takes order → commit through a
// helper, backward takes commit → order directly. The helper also has a
// lock-free call site so its entry set is inferred empty and the witness
// chain runs through forward's call.
const seededInversion = `package scheduler

import "sync"

type regressionPair struct {
	order  sync.Mutex
	commit sync.Mutex
}

func (p *regressionPair) lockCommit() {
	p.commit.Lock()
	p.commit.Unlock()
}

func (p *regressionPair) forward() {
	p.order.Lock()
	p.lockCommit()
	p.order.Unlock()
}

func (p *regressionPair) backward() {
	p.commit.Lock()
	p.order.Lock()
	p.order.Unlock()
	p.commit.Unlock()
}

func (p *regressionPair) reset() {
	p.lockCommit()
	p.forward()
	p.backward()
}
`

// TestSeededInversionRegression injects the inversion and requires
// deadlockcheck to report the cycle with the interprocedural witness chain
// through the helper.
func TestSeededInversionRegression(t *testing.T) {
	root := moduleRoot(t)
	tmp := t.TempDir()
	copyModule(t, root, tmp)
	inj := filepath.Join(tmp, "internal", "scheduler", "zz_regression.go")
	if err := os.WriteFile(inj, []byte(seededInversion), 0o644); err != nil {
		t.Fatal(err)
	}

	diags, pkg := runOn(t, deadlockcheck.Analyzer, newLoader(t, tmp), "pandia/internal/scheduler")
	if len(diags) == 0 {
		t.Fatal("seeded lock-order inversion produced no deadlockcheck diagnostics")
	}
	found := false
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		t.Logf("diagnostic: %s:%d: %s", filepath.Base(pos.Filename), pos.Line, d.Message)
		if strings.Contains(d.Message, "potential lock-order inversion among (scheduler.regressionPair).commit, (scheduler.regressionPair).order") &&
			strings.Contains(d.Message, "via (*scheduler.regressionPair).forward → (*scheduler.regressionPair).lockCommit") {
			found = true
		}
	}
	if !found {
		t.Error("no diagnostic names the inversion with the forward → lockCommit witness chain")
	}
}
