// Package a is the deadlockcheck fixture: a two-function lock-order
// inversion, an interprocedural double-lock, and blocking operations
// under a lock.
package a

import (
	"sync"
	"time"
)

type S struct {
	muA sync.Mutex
	muB sync.Mutex
}

// lockB takes muB briefly. It is also called lock-free (Reset), so its
// inferred entry set is empty and the order edge anchors at LockAB's call.
func (s *S) lockB() {
	s.muB.Lock()
	s.muB.Unlock()
}

// LockAB establishes the order muA → muB through the helper.
func (s *S) LockAB() {
	s.muA.Lock()
	s.lockB() // want `potential lock-order inversion among \(a\.S\)\.muA, \(a\.S\)\.muB: holding \(a\.S\)\.muA, \(a\.S\)\.muB is acquired via \(\*a\.S\)\.LockAB → \(\*a\.S\)\.lockB \(a\.go:\d+\); holding \(a\.S\)\.muB, \(a\.S\)\.muA is acquired via \(\*a\.S\)\.LockBA \(a\.go:\d+\)`
	s.muA.Unlock()
}

// LockBA establishes muB → muA: the inversion's other half.
func (s *S) LockBA() {
	s.muB.Lock()
	s.muA.Lock()
	s.muA.Unlock()
	s.muB.Unlock()
}

// Reset gives lockB a lock-free call site.
func (s *S) Reset() {
	s.lockB()
}

// lockA acquires muA and leaves it held (a lock() helper: its exit delta
// composes into callers).
func (s *S) lockA() {
	s.muA.Lock()
}

// Double re-acquires muA through lockA while already holding it.
func (s *S) Double() {
	s.muA.Lock()
	s.lockA() // want `\(a\.S\)\.muA is acquired again via \(\*a\.S\)\.Double → \(\*a\.S\)\.lockA \(a\.go:\d+\) while already write-held; sync mutexes are not re-entrant`
	s.muA.Unlock()
	s.muA.Unlock()
}

// Send blocks on a channel send while holding muA.
func (s *S) Send(ch chan int) {
	s.muA.Lock()
	ch <- 1 // want `channel send while holding \(a\.S\)\.muA`
	s.muA.Unlock()
}

// waitOn is only called under muA, so the inferred entry set puts its
// receive under the lock.
func (s *S) waitOn(ch chan int) {
	<-ch // want `channel receive while holding \(a\.S\)\.muA`
}

// RecvUnderLock reaches waitOn's receive while holding muA; the call site
// gets the chained witness.
func (s *S) RecvUnderLock(ch chan int) {
	s.muA.Lock()
	s.waitOn(ch) // want `channel receive while holding \(a\.S\)\.muA via \(\*a\.S\)\.RecvUnderLock → \(\*a\.S\)\.waitOn \(a\.go:\d+\)`
	s.muA.Unlock()
}

// Nap sleeps holding the lock.
func (s *S) Nap() {
	s.muA.Lock()
	time.Sleep(time.Millisecond) // want `call to time\.Sleep while holding \(a\.S\)\.muA`
	s.muA.Unlock()
}

// WaitUnder waits on a WaitGroup while holding muA (through a defer'd
// unlock, still held at the Wait).
func (s *S) WaitUnder(wg *sync.WaitGroup) {
	s.muA.Lock()
	defer s.muA.Unlock()
	wg.Wait() // want `call to sync\.WaitGroup\.Wait while holding \(a\.S\)\.muA`
}

// Poll cannot block: the select has a default clause.
func (s *S) Poll(ch chan int) {
	s.muA.Lock()
	select {
	case v := <-ch:
		_ = v
	default:
	}
	s.muA.Unlock()
}

// Clean releases before the send: no finding.
func (s *S) Clean(ch chan int) {
	s.muA.Lock()
	s.muA.Unlock()
	ch <- 1
}

type R struct {
	mu sync.RWMutex
}

// rread re-acquires the read lock its callers hold: RLock is shareable,
// no double-lock.
func (r *R) rread() {
	r.mu.RLock()
	r.mu.RUnlock()
}

func (r *R) Readers() {
	r.mu.RLock()
	r.rread()
	r.mu.RUnlock()
}

// Handoff documents a deliberate send under the lock; the reason makes the
// suppression legal.
func (s *S) Handoff(ch chan int) {
	s.muA.Lock()
	ch <- 1 //deadlockcheck:ok bounded handoff, consumer never takes muA
	s.muA.Unlock()
}

func (s *S) badSuppression(ch chan int) {
	s.muA.Lock()
	ch <- 1 /*deadlockcheck:ok*/ // want `//deadlockcheck:ok needs a reason`
	s.muA.Unlock()
}
