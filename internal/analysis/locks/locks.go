// Package locks is the interprocedural lock-set engine behind the
// deadlockcheck and guardcheck passes. It layers on the repository's
// callgraph (SCC bottom-up summaries) and dataflow (CFG/worklist) packages
// to compute, for every function in a package's module-local closure:
//
//   - an entry lock set: the locks every caller provably holds at the call
//     (the intersection over all call sites, computed top-down — exported
//     functions and functions whose address escapes get the empty set);
//   - an exit delta: locks definitely acquired-and-still-held at return and
//     entry locks definitely released, so lock()/unlock() helper idioms
//     compose across frames;
//   - a may-acquire summary: every lock any transitive callee can take,
//     each with a call-chain witness, feeding a global lock-acquisition-
//     order graph whose cycles are potential deadlocks;
//   - a may-block summary: whether any path performs a channel operation or
//     a known-blocking standard-library call (WaitGroup.Wait, Cond.Wait,
//     time.Sleep, net/http, os/exec), with a witness.
//
// Lock identity is compositional in the RacerD style: a lock reached
// through a field path from a variable of named type T is identified as
// (T).path, so s.mu.Lock() in a caller and the callee method it invokes on
// the same receiver name the same abstract lock. Distinct instances of one
// type are deliberately conflated — the engine proves a per-type locking
// DISCIPLINE, not per-object mutual exclusion. Locks the engine cannot
// name (index expressions, call results) degrade to function-local
// identities that never cross frames.
//
// The engine is shared: Analyze memoizes its Result per root package, so
// deadlockcheck and guardcheck pay for one closure walk, not two.
package locks

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Mode is the strength of a lock acquisition.
type Mode uint8

const (
	// ModeRead is a shared acquisition (RLock).
	ModeRead Mode = iota + 1
	// ModeWrite is an exclusive acquisition (Lock).
	ModeWrite
)

// String names the mode for diagnostics.
func (m Mode) String() string {
	if m == ModeRead {
		return "read"
	}
	return "write"
}

// minMode returns the weaker of two acquisition strengths, for definite
// joins: a lock write-held on one path and read-held on another is only
// definitely read-held.
func minMode(a, b Mode) Mode {
	if a < b {
		return a
	}
	return b
}

// lockKind classifies how a LockID is rooted.
type lockKind uint8

const (
	// kindType roots the lock at a named type: any variable of type T (or
	// *T) reaching the lock through the same field path names the same
	// lock. This is the compositional identity that crosses call frames.
	kindType lockKind = iota
	// kindGlobal roots the lock at a package-level variable.
	kindGlobal
	// kindLocal roots the lock at one local variable whose type gives no
	// named root (a bare `var mu sync.Mutex`). The identity crosses into
	// function literals that capture the variable, but not static calls.
	kindLocal
	// kindExpr is the fallback for expressions with no nameable root
	// (map/slice elements, call results); purely function-local.
	kindExpr
)

// LockID names one abstract lock. It is comparable and used as a map key;
// two IDs are the same lock exactly when their fields are equal.
type LockID struct {
	kind lockKind
	typ  *types.TypeName // kindType: the named root type
	obj  types.Object    // kindGlobal/kindLocal: the root variable
	path string          // dotted field path from the root ("" when the root is the mutex)
	name string          // kindExpr: rendered expression; else the display form
}

// String renders the lock for reports: "(scheduler.Scheduler).mu",
// "scenario.machineCache.Mutex", or a local variable's name.
func (id LockID) String() string { return id.name }

// rooted reports whether the ID survives crossing a static call frame:
// type- and global-rooted locks keep their meaning in the callee,
// local/expression locks do not.
func (id LockID) rooted() bool { return id.kind == kindType || id.kind == kindGlobal }

// shortPath compresses an import path for display, matching callgraph.
func shortPath(path string) string {
	path = strings.TrimPrefix(path, "pandia/internal/")
	path = strings.TrimPrefix(path, "pandia/")
	return path
}

// rootKey identifies the base object a field access is rooted at, so guard
// lookups can rebuild the sibling lock's LockID. It is a LockID with an
// empty path.
type rootKey struct {
	kind lockKind
	typ  *types.TypeName
	obj  types.Object
}

// childID builds the LockID of a field path under a root.
func (r rootKey) childID(path string) LockID {
	id := LockID{kind: r.kind, typ: r.typ, obj: r.obj, path: path}
	switch r.kind {
	case kindType:
		id.name = "(" + typeDisp(r.typ) + ")." + path
	case kindGlobal, kindLocal:
		id.name = objDisp(r.obj)
		if path != "" {
			id.name += "." + path
		}
	}
	return id
}

func typeDisp(tn *types.TypeName) string {
	if tn.Pkg() == nil {
		return tn.Name()
	}
	return shortPath(tn.Pkg().Path()) + "." + tn.Name()
}

func objDisp(o types.Object) string {
	if o.Pkg() != nil && o.Parent() == o.Pkg().Scope() {
		return shortPath(o.Pkg().Path()) + "." + o.Name()
	}
	return o.Name()
}

// rootAndPath peels a selector chain down to its root variable, collecting
// the dotted field path (including implicit embedded-field hops resolved
// through go/types selections). It fails on anything that is not a plain
// variable/field chain.
func rootAndPath(x ast.Expr, info *types.Info) (*types.Var, []string, bool) {
	switch x := ast.Unparen(x).(type) {
	case *ast.Ident:
		v, ok := info.Uses[x].(*types.Var)
		if !ok {
			v, ok = info.Defs[x].(*types.Var)
		}
		return v, nil, ok
	case *ast.SelectorExpr:
		sel, ok := info.Selections[x]
		if !ok || sel.Kind() != types.FieldVal {
			return nil, nil, false
		}
		root, path, ok := rootAndPath(x.X, info)
		if !ok {
			return nil, nil, false
		}
		hops, ok := fieldPathNames(info.TypeOf(x.X), sel.Index())
		if !ok {
			return nil, nil, false
		}
		return root, append(path, hops...), true
	case *ast.StarExpr:
		return rootAndPath(x.X, info)
	}
	return nil, nil, false
}

// fieldPathNames maps a go/types selection index path onto field names,
// starting from the (possibly pointer) base type. This surfaces implicit
// embedded hops: machineCache.Lock() on a struct embedding sync.Mutex
// yields ["Mutex"] for the promoted receiver.
func fieldPathNames(base types.Type, index []int) ([]string, bool) {
	names := make([]string, 0, len(index))
	t := base
	for _, i := range index {
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		st, ok := t.Underlying().(*types.Struct)
		if !ok || i < 0 || i >= st.NumFields() {
			return nil, false
		}
		f := st.Field(i)
		names = append(names, f.Name())
		t = f.Type()
	}
	return names, true
}

// namedRoot returns the named type of a (possibly pointer) type, or nil.
func namedRoot(t types.Type) *types.TypeName {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}

// makeRoot classifies a root variable.
func makeRoot(root *types.Var, hasPath bool) (rootKey, bool) {
	switch {
	case root.Pkg() != nil && root.Parent() == root.Pkg().Scope():
		return rootKey{kind: kindGlobal, obj: root}, true
	case hasPath:
		if tn := namedRoot(root.Type()); tn != nil {
			return rootKey{kind: kindType, typ: tn}, true
		}
		return rootKey{kind: kindLocal, obj: root}, true
	default:
		return rootKey{kind: kindLocal, obj: root}, true
	}
}

// lockIDOf canonicalizes the expression a sync method was invoked on (plus
// any implicit embedded path) into a LockID. The fallback for unnameable
// expressions renders the expression itself, local to the function.
func lockIDOf(base ast.Expr, implicit []string, info *types.Info) LockID {
	root, path, ok := rootAndPath(base, info)
	if ok {
		path = append(path, implicit...)
		if rk, ok := makeRoot(root, len(path) > 0); ok {
			return rk.childID(strings.Join(path, "."))
		}
	}
	disp := types.ExprString(base)
	if len(implicit) > 0 {
		disp += "." + strings.Join(implicit, ".")
	}
	return LockID{kind: kindExpr, name: disp}
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex (by name).
func isMutexType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	o := n.Obj()
	return o.Pkg() != nil && o.Pkg().Path() == "sync" &&
		(o.Name() == "Mutex" || o.Name() == "RWMutex")
}

// syncOp is one recognized mutex method call.
type syncOp struct {
	id     LockID
	method string // Lock, Unlock, RLock, RUnlock, TryLock, TryRLock
}

var syncMethods = map[string]bool{
	"Lock": true, "Unlock": true, "RLock": true, "RUnlock": true,
	"TryLock": true, "TryRLock": true,
}

// syncCall recognizes a call of a sync.Mutex / sync.RWMutex method
// (including promoted methods of embedded mutexes) and canonicalizes the
// receiver into a LockID.
func syncCall(call *ast.CallExpr, info *types.Info) (syncOp, bool) {
	fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return syncOp{}, false
	}
	sel, ok := info.Selections[fun]
	if !ok || sel.Kind() != types.MethodVal {
		return syncOp{}, false
	}
	fn, ok := sel.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" || !syncMethods[fn.Name()] {
		return syncOp{}, false
	}
	// The method's own receiver must be a mutex (excludes e.g. sync.Map
	// methods, which share no names anyway, and sync.Locker interface
	// calls, whose Selections recv is the interface).
	sig := fn.Type().(*types.Signature)
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	if !isMutexType(recv) {
		return syncOp{}, false
	}
	// All but the last selection index are implicit embedded-field hops
	// from the receiver expression to the mutex.
	idx := sel.Index()
	implicit, ok := fieldPathNames(info.TypeOf(fun.X), idx[:len(idx)-1])
	if !ok {
		return syncOp{}, false
	}
	return syncOp{id: lockIDOf(fun.X, implicit, info), method: fn.Name()}, true
}

// blockingExternal classifies a standard-library function the engine
// treats as blocking while holding a lock. Unknown externals and dynamic
// calls are deliberately NOT classified — treating every opaque call as
// blocking would drown real findings (documented soundness trade-off).
func blockingExternal(fn *types.Func) (string, bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return "", false
	}
	switch pkg.Path() {
	case "sync":
		if fn.Name() == "Wait" { // (*WaitGroup).Wait, (*Cond).Wait
			sig := fn.Type().(*types.Signature)
			if sig.Recv() != nil {
				return "sync." + recvTypeName(sig) + ".Wait", true
			}
		}
	case "time":
		if fn.Name() == "Sleep" {
			return "time.Sleep", true
		}
	case "net/http", "net", "os/exec":
		return pkg.Path() + "." + fn.Name(), true
	}
	return "", false
}

func recvTypeName(sig *types.Signature) string {
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}

// isChanType reports whether t is (or derefs to) a channel.
func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// sortedIDs returns the map's keys in display order, for deterministic
// iteration over held/acquired sets.
func sortedIDs[V any](m map[LockID]V) []LockID {
	ids := make([]LockID, 0, len(m))
	for id := range m { //detlint:ignore sorted below
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].name != ids[j].name {
			return ids[i].name < ids[j].name
		}
		return ids[i].path < ids[j].path
	})
	return ids
}

// holding renders a held set for messages: "holding (a.S).mu" or
// "holding (a.S).mu, (a.S).mu2".
func holding(held map[LockID]Mode) string {
	ids := sortedIDs(held)
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = id.String()
	}
	return strings.Join(parts, ", ")
}

// posLabel renders a position as "file.go:12" (basename only), for
// embedding in messages whose anchor is elsewhere.
func posLabel(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	name := p.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return fmt.Sprintf("%s:%d", name, p.Line)
}
