package locks

import (
	"strings"
	"testing"
)

// FuzzGuardAnnotation checks the //pandia:guardedby parser never panics,
// that accepted lock lists are well-formed identifier paths, and that
// every accepted annotation re-renders into a form the parser accepts
// with the same meaning.
func FuzzGuardAnnotation(f *testing.F) {
	for _, seed := range []string{
		"//pandia:guardedby(mu)",
		"//pandia:guardedby(mu, mu2)",
		"//pandia:guardedby( state.mu )",
		"/*pandia:guardedby(Mutex)*/",
		"//pandia:guardedby(mu) // note",
		"//pandia:guardedby",
		"//pandia:guardedby()",
		"//pandia:guardedby(",
		"//pandia:guardedby(mu",
		"//pandia:guardedby(mu,)",
		"//pandia:guardedby(mu))",
		"//pandia:guardedby(1mu)",
		"//pandia:guardedby(mu.)",
		"//pandia:guardedby(.mu)",
		"//pandia:guardedby(a..b)",
		"//pandia:guardedby(a b)",
		"//pandia:guardedby(µ)",
		"//pandia:guardedby(mu\x00)",
		"//pandia:guardedby(mu) trailing",
		"// pandia:guardedby(mu)",
		"//pandia:noalloc",
		"/*pandia:guardedby(mu)",
		"",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		locks, isGuard, err := ParseGuardAnnotation(s)
		if !isGuard {
			if err != nil || locks != nil {
				t.Fatalf("non-directive %q returned locks=%v err=%v", s, locks, err)
			}
			return
		}
		if err != nil {
			if locks != nil {
				t.Fatalf("error case %q still returned locks %v", s, locks)
			}
			return
		}
		if len(locks) == 0 {
			t.Fatalf("accepted %q with an empty lock list", s)
		}
		for _, l := range locks {
			if !validLockPath(l) {
				t.Fatalf("accepted %q with invalid lock path %q", s, l)
			}
		}
		back := "//pandia:guardedby(" + strings.Join(locks, ", ") + ")"
		locks2, isGuard2, err2 := ParseGuardAnnotation(back)
		if !isGuard2 || err2 != nil || strings.Join(locks, ",") != strings.Join(locks2, ",") {
			t.Fatalf("round trip %q -> %q: locks=%v isGuard=%v err=%v", s, back, locks2, isGuard2, err2)
		}
	})
}
