package locks

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"pandia/internal/analysis/callgraph"
	"pandia/internal/analysis/dataflow"
)

// fact is the lock-set dataflow fact: the locks definitely held, the entry
// locks definitely released, and the pending deferred unlocks.
type fact struct {
	bottom   bool
	held     map[LockID]Mode
	released map[LockID]bool
	deferred map[LockID]bool
}

func newFact(entry map[LockID]Mode) *fact {
	f := &fact{held: map[LockID]Mode{}, released: map[LockID]bool{}, deferred: map[LockID]bool{}}
	for id, m := range entry {
		f.held[id] = m
	}
	return f
}

func (f *fact) clone() *fact {
	if f.bottom {
		return &fact{bottom: true}
	}
	c := &fact{
		held:     make(map[LockID]Mode, len(f.held)),
		released: make(map[LockID]bool, len(f.released)),
		deferred: make(map[LockID]bool, len(f.deferred)),
	}
	for k, v := range f.held {
		c.held[k] = v
	}
	for k := range f.released {
		c.released[k] = true
	}
	for k := range f.deferred {
		c.deferred[k] = true
	}
	return c
}

// applyDeferred runs the pending deferred unlocks (at a return or the
// fall-off-the-end exit).
func (f *fact) applyDeferred() {
	for id := range f.deferred {
		if _, ok := f.held[id]; ok {
			delete(f.held, id)
		} else {
			f.released[id] = true
		}
	}
	f.deferred = map[LockID]bool{}
}

// lockLattice adapts the fact to the dataflow solver. The join is the
// definite intersection: a lock is held after a merge only if held on both
// paths (write only if write-held on both).
type lockLattice struct {
	e     *engine
	fn    *callgraph.Node
	entry map[LockID]Mode
}

func (l *lockLattice) Bottom() dataflow.Fact   { return &fact{bottom: true} }
func (l *lockLattice) Boundary() dataflow.Fact { return newFact(l.entry) }

func (l *lockLattice) Join(a, b dataflow.Fact) dataflow.Fact {
	fa, fb := a.(*fact), b.(*fact)
	if fa.bottom {
		return fb
	}
	if fb.bottom {
		return fa
	}
	out := &fact{held: map[LockID]Mode{}, released: map[LockID]bool{}, deferred: map[LockID]bool{}}
	for id, ma := range fa.held {
		if mb, ok := fb.held[id]; ok {
			out.held[id] = minMode(ma, mb)
		}
	}
	for id := range fa.released {
		if fb.released[id] {
			out.released[id] = true
		}
	}
	for id := range fa.deferred {
		if fb.deferred[id] {
			out.deferred[id] = true
		}
	}
	return out
}

func (l *lockLattice) Equal(a, b dataflow.Fact) bool {
	fa, fb := a.(*fact), b.(*fact)
	if fa.bottom != fb.bottom {
		return false
	}
	if fa.bottom {
		return true
	}
	if len(fa.held) != len(fb.held) || len(fa.released) != len(fb.released) ||
		len(fa.deferred) != len(fb.deferred) {
		return false
	}
	for id, m := range fa.held {
		if fb.held[id] != m {
			return false
		}
	}
	for id := range fa.released {
		if !fb.released[id] {
			return false
		}
	}
	for id := range fa.deferred {
		if !fb.deferred[id] {
			return false
		}
	}
	return true
}

func (l *lockLattice) Transfer(b *dataflow.Block, in dataflow.Fact) dataflow.Fact {
	f := in.(*fact)
	if f.bottom {
		return f
	}
	out := f.clone()
	for _, node := range b.Nodes {
		l.e.exec(l.fn, node, out, nil)
	}
	return out
}

// sink receives the engine's observations during a deterministic replay.
// All callbacks are optional.
type sink struct {
	// onAcquire fires for every acquisition visible at this frame: local
	// Lock/RLock statements (via == nil) and the may-acquire set of every
	// called function (via = call chain, anchor = call site).
	onAcquire func(id LockID, mode Mode, anchor, acqPos token.Pos, via []string, f *fact)
	// onBlock fires for blocking operations: local channel ops and
	// classified blocking calls (via as above).
	onBlock func(anchor, opPos token.Pos, desc string, via []string, f *fact)
	// onCall fires before a resolved call edge's effects are applied, with
	// the lock set held at the call.
	onCall func(call *ast.CallExpr, ed *callgraph.Edge, f *fact)
	// onAccess fires for every tracked struct-field access.
	onAccess func(a *FieldAccess)
}

// exec interprets one CFG node, mutating the fact and reporting to the
// sink. Nested function literals are opaque (their bodies are separate
// nodes); go/defer spawned work does not affect this frame's lock state.
func (e *engine) exec(fn *callgraph.Node, node ast.Node, f *fact, s *sink) {
	info := fn.Pkg.Info
	ast.Inspect(node, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			// Arguments are evaluated synchronously; the spawned call runs
			// on its own goroutine with its own (empty) entry set.
			for _, arg := range x.Call.Args {
				e.exec(fn, arg, f, s)
			}
			return false
		case *ast.DeferStmt:
			if op, ok := syncCall(x.Call, info); ok && (op.method == "Unlock" || op.method == "RUnlock") {
				f.deferred[op.id] = true
			}
			for _, arg := range x.Call.Args {
				e.exec(fn, arg, f, s)
			}
			return false
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				e.exec(fn, r, f, s)
			}
			f.applyDeferred()
			return false
		case *ast.CallExpr:
			if op, ok := syncCall(x, info); ok {
				e.syncEffect(x, op, f, s)
				return false
			}
			for _, ed := range e.edges[fn][x.Pos()] {
				e.callEffect(fn, x, ed, f, s)
			}
			return true
		case *ast.SendStmt:
			e.blockOp(x.Pos(), "channel send", f, s)
			return true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				e.blockOp(x.Pos(), "channel receive", f, s)
			}
			return true
		case *ast.RangeStmt:
			// The CFG keeps the whole statement as the loop header node;
			// the body belongs to successor blocks, so only X is executed
			// here. Ranging over a channel blocks on every iteration.
			if isChanType(info.TypeOf(x.X)) {
				e.blockOp(x.X.Pos(), "channel receive (range)", f, s)
			}
			e.exec(fn, x.X, f, s)
			return false
		case *ast.SelectorExpr:
			e.accessEffect(fn, x, f, s)
			return true
		}
		return true
	})
}

// syncEffect applies one mutex method call.
func (e *engine) syncEffect(call *ast.CallExpr, op syncOp, f *fact, s *sink) {
	switch op.method {
	case "Lock", "RLock":
		mode := ModeWrite
		if op.method == "RLock" {
			mode = ModeRead
		}
		if s != nil && s.onAcquire != nil {
			s.onAcquire(op.id, mode, call.Pos(), call.Pos(), nil, f)
		}
		f.held[op.id] = mode
	case "Unlock", "RUnlock":
		if _, ok := f.held[op.id]; ok {
			delete(f.held, op.id)
		} else {
			f.released[op.id] = true
		}
	case "TryLock", "TryRLock":
		// May or may not acquire: no definite effect either way.
	}
}

// blockOp reports a local blocking operation (unless it sits in a select
// with a default clause, which cannot block).
func (e *engine) blockOp(pos token.Pos, desc string, f *fact, s *sink) {
	if e.nonBlockPos[pos] {
		return
	}
	if s != nil && s.onBlock != nil {
		s.onBlock(pos, pos, desc, nil, f)
	}
}

// callEffect applies one call edge: the callees' definite deltas compose
// into this frame, their may-acquire and may-block summaries are surfaced
// through the sink. Ref edges (function values being created) may run
// later under a different lock set and contribute nothing here.
func (e *engine) callEffect(fn *callgraph.Node, call *ast.CallExpr, ed *callgraph.Edge, f *fact, s *sink) {
	if ed.Kind == callgraph.Ref {
		return
	}
	if ed.External != nil {
		if desc, ok := blockingExternal(ed.External); ok && s != nil && s.onBlock != nil {
			s.onBlock(call.Pos(), call.Pos(), "call to "+desc, nil, f)
		}
		return
	}
	if len(ed.Callees) == 0 {
		return // unresolved func value: unknown, assumed lock-neutral
	}
	if s != nil && s.onCall != nil {
		s.onCall(call, ed, f)
	}
	isLit := ed.Kind == callgraph.Literal
	if isLit && len(ed.Callees) == 1 {
		lit := ed.Callees[0].Lit
		if lit != nil && e.usage[lit] != litCall {
			return // go/defer/value literal: not executed here
		}
	}

	// Definite deltas: intersection across fan-out callees. May-effects:
	// union.
	var exit map[LockID]Mode
	var rel map[LockID]bool
	acq := map[LockID]*acqInfo{}
	var blk *blockInfo
	var blkVia []string
	for i, c := range ed.Callees {
		sum := e.sums[c]
		if sum == nil {
			sum = &summary{}
		}
		if i == 0 {
			exit = filterHeld(sum.exitHeld, isLit)
			rel = filterSet(sum.releasedEntry, isLit)
		} else {
			exit = intersectHeld(exit, filterHeld(sum.exitHeld, isLit))
			rel = intersectSet(rel, filterSet(sum.releasedEntry, isLit))
		}
		for id, ai := range sum.acquired {
			if !crossesFrame(id, isLit) {
				continue
			}
			if acq[id] == nil {
				acq[id] = &acqInfo{mode: ai.mode, pos: ai.pos,
					via: append([]string{c.Name()}, ai.via...)}
			}
		}
		if blk == nil && sum.blocks != nil {
			blk = sum.blocks
			blkVia = append([]string{c.Name()}, sum.blocks.via...)
		}
	}

	if s != nil && s.onAcquire != nil {
		for _, id := range sortedIDs(acq) {
			ai := acq[id]
			s.onAcquire(id, ai.mode, call.Pos(), ai.pos, ai.via, f)
		}
	}
	if blk != nil && s != nil && s.onBlock != nil {
		s.onBlock(call.Pos(), blk.pos, blk.desc, blkVia, f)
	}
	for id := range rel {
		if _, ok := f.held[id]; ok {
			delete(f.held, id)
		} else {
			f.released[id] = true
		}
	}
	for id, m := range exit {
		f.held[id] = m
	}
}

// crossesFrame reports whether a lock identity keeps its meaning across
// the call: rooted locks always, function-local variables only into
// literals (which share the enclosing scope), rendered expressions never.
func crossesFrame(id LockID, intoLiteral bool) bool {
	if id.rooted() {
		return true
	}
	return intoLiteral && id.kind == kindLocal
}

func filterHeld(m map[LockID]Mode, lit bool) map[LockID]Mode {
	out := map[LockID]Mode{}
	for id, v := range m {
		if crossesFrame(id, lit) {
			out[id] = v
		}
	}
	return out
}

func filterSet(m map[LockID]bool, lit bool) map[LockID]bool {
	out := map[LockID]bool{}
	for id := range m {
		if crossesFrame(id, lit) {
			out[id] = true
		}
	}
	return out
}

func intersectHeld(a, b map[LockID]Mode) map[LockID]Mode {
	out := map[LockID]Mode{}
	for id, ma := range a {
		if mb, ok := b[id]; ok {
			out[id] = minMode(ma, mb)
		}
	}
	return out
}

func intersectSet(a, b map[LockID]bool) map[LockID]bool {
	out := map[LockID]bool{}
	for id := range a {
		if b[id] {
			out[id] = true
		}
	}
	return out
}

// accessEffect records one tracked struct-field access for guardcheck.
func (e *engine) accessEffect(fn *callgraph.Node, x *ast.SelectorExpr, f *fact, s *sink) {
	if s == nil || s.onAccess == nil {
		return
	}
	info := fn.Pkg.Info
	sel, ok := info.Selections[x]
	if !ok || sel.Kind() != types.FieldVal {
		return
	}
	fld, ok := sel.Obj().(*types.Var)
	if !ok || e.structs[fld] == nil || isMutexType(fld.Type()) {
		return
	}
	root, basePath, okRoot := rootAndPath(x.X, info)
	if !okRoot {
		return
	}
	idx := sel.Index()
	hops, okHops := fieldPathNames(info.TypeOf(x.X), idx[:len(idx)-1])
	if !okHops {
		return
	}
	basePath = append(basePath, hops...)
	rk, okRk := makeRoot(root, true)
	if !okRk {
		return
	}
	held := make(map[LockID]Mode, len(f.held))
	for id, m := range f.held {
		held[id] = m
	}
	s.onAccess(&FieldAccess{
		Field:    fld,
		Pos:      x.Sel.Pos(),
		Write:    e.writes[x.Pos()],
		Fresh:    e.fresh[fn][root],
		InRoot:   fn.Pkg.Types == e.rootPkg,
		FnName:   fn.Name(),
		fn:       fn,
		root:     rk,
		basePath: strings.Join(basePath, "."),
		held:     held,
	})
}

// solveNode runs the lock dataflow over one function with the given entry
// set and returns the per-block facts.
func (e *engine) solveNode(n *callgraph.Node, entry map[LockID]Mode) *dataflow.Result {
	l := &lockLattice{e: e, fn: n, entry: entry}
	return dataflow.Solve(e.cfgs[n], l, dataflow.Forward)
}

// replayNode re-executes every reachable block once, in deterministic
// order, feeding the sink from the converged entry facts.
func (e *engine) replayNode(n *callgraph.Node, res *dataflow.Result, s *sink) {
	g := e.cfgs[n]
	for _, b := range g.Blocks {
		in, ok := res.In[b].(*fact)
		if !ok || in.bottom {
			continue
		}
		f := in.clone()
		for _, node := range b.Nodes {
			e.exec(n, node, f, s)
		}
	}
}

// entryOf returns the inferred entry set of a node (empty before
// inference ran, or for entry points).
func (e *engine) entryOf(n *callgraph.Node) map[LockID]Mode {
	if en := e.entries[n]; en != nil && en.held != nil {
		return en.held
	}
	return nil
}

// chainLabel renders "fn → via0 → via1".
func chainLabel(fn string, via []string) string {
	if len(via) == 0 {
		return fn
	}
	return fn + " → " + strings.Join(via, " → ")
}

// siteLabel renders "(*a.S).Caller at a.go:12".
func (e *engine) siteLabel(fn *callgraph.Node, pos token.Pos) string {
	return fmt.Sprintf("%s at %s", fn.Name(), posLabel(e.fset, pos))
}
