package locks

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sync"

	"pandia/internal/analysis"
	"pandia/internal/analysis/callgraph"
	"pandia/internal/analysis/dataflow"
)

// Finding is one fully-rendered engine finding, anchored in the root
// package. The passes only filter suppressions and report.
type Finding struct {
	Pos     token.Pos
	Message string
}

// OrderEdge is one observed lock-acquisition ordering: To was acquired on
// some path while From was held. Edges are deduplicated by (From, To) with
// the first witness kept.
type OrderEdge struct {
	From, To LockID
	// Pos anchors the witness: the acquiring statement or, for an
	// acquisition inside a callee, the call site.
	Pos token.Pos
	// AcqPos is the ultimate Lock statement (may be in another package).
	AcqPos token.Pos
	// Chain renders the call path from the witness function to the
	// acquisition, e.g. "(*a.S).LockAB → (*a.S).lockB".
	Chain string
	// InRoot reports whether Pos lies in the root package, i.e. whether
	// this package's pass may anchor a report on it.
	InRoot bool
}

// FieldAccess is one read or write of a tracked struct field, with the
// lock set held at that program point.
type FieldAccess struct {
	// Field is the accessed field's object.
	Field *types.Var
	// Pos anchors the access (the field selector).
	Pos token.Pos
	// Write reports mutation: assignment (including through an index),
	// inc/dec, delete, or address-taking.
	Write bool
	// Fresh marks accesses through a local variable holding a value
	// constructed in the same function (constructor idiom): no other
	// goroutine can see the object yet, so guards do not apply.
	Fresh bool
	// InRoot reports whether the access lies in the root package.
	InRoot bool
	// FnName names the enclosing function for messages.
	FnName string

	fn       *callgraph.Node
	root     rootKey
	basePath string
	held     map[LockID]Mode
}

// GuardMode returns the mode the access holds the guard at, where
// guardPath is relative to the field's owning struct ("mu", "state.mu");
// zero means the guard is not held.
func (a *FieldAccess) GuardMode(guardPath string) Mode {
	return a.held[a.guardID(guardPath)]
}

// GuardName renders the guard's lock identity as seen from this access.
func (a *FieldAccess) GuardName(guardPath string) string {
	return a.guardID(guardPath).String()
}

func (a *FieldAccess) guardID(guardPath string) LockID {
	p := guardPath
	if a.basePath != "" {
		p = a.basePath + "." + guardPath
	}
	return a.root.childID(p)
}

// Result is the engine's output for one root package and its module-local
// closure.
type Result struct {
	// OrderEdges is the global lock-acquisition-order graph (deduplicated,
	// deterministic order).
	OrderEdges []OrderEdge
	// Doubles are interprocedural re-acquisitions of an already-held lock.
	Doubles []Finding
	// Blocking are blocking operations performed while holding a lock.
	Blocking []Finding
	// Accesses are all tracked field accesses across the closure; report
	// only those with InRoot set.
	Accesses []*FieldAccess
	// GuardErrs are malformed //pandia:guardedby annotations in the root
	// package.
	GuardErrs []analysis.Diagnostic

	structs map[*types.Var]*structInfo
	entries map[*callgraph.Node]*entryInfo
	fset    *token.FileSet
}

// PosLabel renders a position as "file.go:12" for embedding in messages
// whose anchor lies elsewhere.
func (r *Result) PosLabel(pos token.Pos) string { return posLabel(r.fset, pos) }

// GuardOf returns the //pandia:guardedby declaration of a field, or nil.
func (r *Result) GuardOf(field *types.Var) *GuardDecl {
	if si := r.structs[field]; si != nil {
		return si.guards[field]
	}
	return nil
}

// StructDisp renders the struct a field belongs to, e.g.
// "scheduler.Scheduler".
func (r *Result) StructDisp(field *types.Var) string {
	if si := r.structs[field]; si != nil {
		return si.disp
	}
	return "?"
}

// MutexPaths lists the direct mutex fields of the field's owning struct —
// the candidate guards for inference.
func (r *Result) MutexPaths(field *types.Var) []string {
	if si := r.structs[field]; si != nil {
		return si.mutexPaths
	}
	return nil
}

// EntryNote explains why an access's enclosing function does not hold the
// guard on entry, naming the caller the inference lost the lock at. Empty
// when the function is an entry point in its own right.
func (r *Result) EntryNote(a *FieldAccess, guardPath string) string {
	en := r.entries[a.fn]
	if en == nil || !en.inferred {
		return ""
	}
	id := a.guardID(guardPath)
	if site := en.removed[id]; site != "" {
		return fmt.Sprintf("; %s is not held on entry (e.g. called from %s)", id, site)
	}
	if en.site != "" {
		return fmt.Sprintf("; %s is not held on entry (e.g. called from %s)", id, en.site)
	}
	return ""
}

// litUse classifies how a function literal is consumed.
type litUse uint8

const (
	litValue litUse = iota // stored/passed as a value
	litCall                // called directly at its definition
	litGo                  // spawned with go
	litDefer               // registered with defer
)

// summary is the bottom-up composition contract of one function.
type summary struct {
	// exitHeld holds the locks definitely acquired inside and still held
	// at every return (a lock() helper's net effect).
	exitHeld map[LockID]Mode
	// releasedEntry holds locks definitely released that were not acquired
	// inside (an unlock() helper releasing its caller's lock).
	releasedEntry map[LockID]bool
	// acquired is the transitive may-acquire set, each with a witness.
	acquired map[LockID]*acqInfo
	// blocks is non-nil when some path may block (channel op or classified
	// blocking call), transitively.
	blocks *blockInfo
}

type acqInfo struct {
	mode Mode
	pos  token.Pos // the ultimate Lock statement
	via  []string  // call chain below this function, outermost first
}

type blockInfo struct {
	desc string
	pos  token.Pos
	via  []string
}

// entryInfo is the inferred entry lock set of one function.
type entryInfo struct {
	// held is the intersection of the lock sets over every visible call
	// site; nil means "no call site seen yet" during inference.
	held map[LockID]Mode
	// inferred marks functions whose entry set came from call-site
	// intersection (as opposed to entry points pinned to the empty set).
	inferred bool
	// site labels a representative call site, removed labels the call site
	// at which the inference lost each lock.
	site    string
	removed map[LockID]string
}

// engine runs the analysis for one root package.
type engine struct {
	pass    *analysis.Pass
	g       *callgraph.Graph
	fset    *token.FileSet
	rootPkg *types.Package

	structs     map[*types.Var]*structInfo
	usage       map[*ast.FuncLit]litUse
	refTarget   map[*callgraph.Node]bool
	nonBlockPos map[token.Pos]bool
	writes      map[token.Pos]bool
	fresh       map[*callgraph.Node]map[types.Object]bool
	edges       map[*callgraph.Node]map[token.Pos][]*callgraph.Edge
	cfgs        map[*callgraph.Node]*dataflow.Graph
	sums        map[*callgraph.Node]*summary
	entries     map[*callgraph.Node]*entryInfo

	orderSeen map[[2]LockID]bool
	findSeen  map[string]bool
	result    *Result
}

// cache memoizes Analyze per root package so deadlockcheck and guardcheck
// share one engine run per package.
var (
	cacheMu sync.Mutex
	cache   = map[*types.Package]*Result{}
)

// Analyze runs (or returns the memoized) lock-set analysis for the pass's
// package and its module-local closure.
func Analyze(pass *analysis.Pass) *Result {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if r, ok := cache[pass.Pkg]; ok {
		return r
	}
	e := &engine{
		pass:        pass,
		g:           callgraph.Build(pass),
		fset:        pass.Fset,
		rootPkg:     pass.Pkg,
		usage:       map[*ast.FuncLit]litUse{},
		refTarget:   map[*callgraph.Node]bool{},
		nonBlockPos: map[token.Pos]bool{},
		writes:      map[token.Pos]bool{},
		fresh:       map[*callgraph.Node]map[types.Object]bool{},
		edges:       map[*callgraph.Node]map[token.Pos][]*callgraph.Edge{},
		cfgs:        map[*callgraph.Node]*dataflow.Graph{},
		sums:        map[*callgraph.Node]*summary{},
		orderSeen:   map[[2]LockID]bool{},
		findSeen:    map[string]bool{},
	}
	e.result = &Result{fset: pass.Fset}
	e.prepare()
	e.summarize()
	e.inferEntries()
	e.replayAll()
	e.result.structs = e.structs
	e.result.entries = e.entries
	cache[pass.Pkg] = e.result
	return e.result
}

// prepare builds the per-node indexes: struct/guard registry, literal
// usage, ref targets, non-blocking select positions, write targets,
// constructor-fresh locals, edge lookup, and CFGs.
func (e *engine) prepare() {
	pkgs := []*analysis.Package{{
		Path:    e.rootPkg.Path(),
		Fset:    e.fset,
		Files:   e.pass.Files,
		Types:   e.rootPkg,
		Info:    e.pass.TypesInfo,
		Imports: e.pass.Deps,
	}}
	seen := map[string]bool{pkgs[0].Path: true}
	var walkDeps func(m map[string]*analysis.Package)
	walkDeps = func(m map[string]*analysis.Package) {
		for _, p := range m {
			if p == nil || seen[p.Path] {
				continue
			}
			seen[p.Path] = true
			pkgs = append(pkgs, p)
			walkDeps(p.Imports)
		}
	}
	walkDeps(e.pass.Deps)
	e.collectStructs(pkgs)

	for _, n := range e.g.Nodes {
		em := map[token.Pos][]*callgraph.Edge{}
		for _, ed := range n.Edges {
			em[ed.Pos] = append(em[ed.Pos], ed)
			if ed.Kind == callgraph.Ref {
				for _, c := range ed.Callees {
					e.refTarget[c] = true
				}
			}
		}
		e.edges[n] = em
		e.cfgs[n] = dataflow.New(n.Body())
		e.prepNode(n)
	}
}

// prepNode classifies literal usage, marks write-target selectors and
// fresh locals, and records channel ops exempted by a select default.
func (e *engine) prepNode(n *callgraph.Node) {
	info := n.Pkg.Info
	freshSet := map[types.Object]bool{}
	e.fresh[n] = freshSet

	markWrite := func(x ast.Expr) {
		t := writeTarget(x)
		if sel, ok := t.(*ast.SelectorExpr); ok {
			e.writes[sel.Pos()] = true
		}
	}
	markFresh := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || !freshExpr(rhs) {
			return
		}
		if obj := info.Defs[id]; obj != nil {
			freshSet[obj] = true
		} else if obj := info.Uses[id]; obj != nil {
			freshSet[obj] = true
		}
	}

	ast.Inspect(n.Body(), func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			if _, ok := e.usage[x]; !ok {
				e.usage[x] = litValue
			}
			return false // nested bodies are their own nodes
		case *ast.GoStmt:
			if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
				e.usage[lit] = litGo
			}
		case *ast.DeferStmt:
			if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
				e.usage[lit] = litDefer
			}
		case *ast.CallExpr:
			if lit, ok := ast.Unparen(x.Fun).(*ast.FuncLit); ok {
				if _, seen := e.usage[lit]; !seen {
					e.usage[lit] = litCall
				}
			}
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "delete" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && len(x.Args) > 0 {
					markWrite(x.Args[0])
				}
			}
		case *ast.AssignStmt:
			for _, l := range x.Lhs {
				markWrite(l)
			}
			if len(x.Lhs) == len(x.Rhs) {
				for i := range x.Lhs {
					markFresh(x.Lhs[i], x.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(x.Names) == len(x.Values) {
				for i := range x.Names {
					markFresh(x.Names[i], x.Values[i])
				}
			}
		case *ast.IncDecStmt:
			markWrite(x.X)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				markWrite(x.X)
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, cl := range x.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if hasDefault {
				for _, cl := range x.Body.List {
					cc, ok := cl.(*ast.CommClause)
					if !ok || cc.Comm == nil {
						continue
					}
					ast.Inspect(cc.Comm, func(y ast.Node) bool {
						switch y := y.(type) {
						case *ast.SendStmt:
							e.nonBlockPos[y.Pos()] = true
						case *ast.UnaryExpr:
							if y.Op == token.ARROW {
								e.nonBlockPos[y.Pos()] = true
							}
						}
						return true
					})
				}
			}
		}
		return true
	})
}

// writeTarget peels index/star/paren wrappers off an assignment target so
// `s.m[k] = v` and `*s.p = v` mark the selector itself.
func writeTarget(x ast.Expr) ast.Expr {
	for {
		switch t := x.(type) {
		case *ast.ParenExpr:
			x = t.X
		case *ast.IndexExpr:
			x = t.X
		case *ast.StarExpr:
			x = t.X
		default:
			return x
		}
	}
}

// freshExpr recognizes constructor right-hand sides: composite literals,
// their addresses, new(T), and make(...).
func freshExpr(x ast.Expr) bool {
	switch x := ast.Unparen(x).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			_, ok := ast.Unparen(x.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
			return id.Name == "new" || id.Name == "make"
		}
	}
	return false
}
