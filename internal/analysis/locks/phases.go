package locks

import (
	"fmt"
	"go/ast"
	"go/token"

	"pandia/internal/analysis/callgraph"
)

// maxSCCRounds bounds the fixed-point iteration of one recursive SCC's
// summaries; lock deltas stabilize in two or three rounds.
const maxSCCRounds = 8

// summarize computes the bottom-up summaries in callee-before-caller SCC
// order, iterating recursive components to a fixed point.
func (e *engine) summarize() {
	for _, scc := range e.g.SCCs() {
		recursive := len(scc) > 1
		if !recursive {
			n := scc[0]
			for _, ed := range n.Edges {
				for _, c := range ed.Callees {
					if c == n {
						recursive = true
					}
				}
			}
		}
		for round := 0; round < maxSCCRounds; round++ {
			changed := false
			for _, n := range scc {
				s := e.computeSummary(n)
				if !summaryEqual(e.sums[n], s) {
					e.sums[n] = s
					changed = true
				}
			}
			if !changed || !recursive {
				break
			}
		}
	}
}

// computeSummary derives one function's summary: the definite exit delta
// from the converged exit fact, the may-acquire and may-block sets from a
// deterministic replay.
func (e *engine) computeSummary(n *callgraph.Node) *summary {
	res := e.solveNode(n, nil)
	sum := &summary{
		exitHeld:      map[LockID]Mode{},
		releasedEntry: map[LockID]bool{},
		acquired:      map[LockID]*acqInfo{},
	}
	if exitF, ok := res.In[e.cfgs[n].Exit].(*fact); ok && !exitF.bottom {
		f := exitF.clone()
		f.applyDeferred()
		sum.exitHeld = f.held
		sum.releasedEntry = f.released
	}
	s := &sink{
		onAcquire: func(id LockID, mode Mode, anchor, acqPos token.Pos, via []string, f *fact) {
			if sum.acquired[id] == nil {
				sum.acquired[id] = &acqInfo{mode: mode, pos: acqPos, via: via}
			}
		},
		onBlock: func(anchor, opPos token.Pos, desc string, via []string, f *fact) {
			if sum.blocks == nil {
				sum.blocks = &blockInfo{desc: desc, pos: opPos, via: via}
			}
		},
	}
	e.replayNode(n, res, s)
	return sum
}

// summaryEqual compares the convergence-relevant parts of two summaries:
// the key sets, not the witnesses (witness choice must not keep the
// fixed-point loop spinning).
func summaryEqual(a, b *summary) bool {
	if a == nil || b == nil {
		return a == b
	}
	if len(a.exitHeld) != len(b.exitHeld) || len(a.releasedEntry) != len(b.releasedEntry) ||
		len(a.acquired) != len(b.acquired) || (a.blocks == nil) != (b.blocks == nil) {
		return false
	}
	for id, m := range a.exitHeld {
		if b.exitHeld[id] != m {
			return false
		}
	}
	for id := range a.releasedEntry {
		if !b.releasedEntry[id] {
			return false
		}
	}
	for id := range a.acquired {
		if b.acquired[id] == nil {
			return false
		}
	}
	return true
}

// inferable reports whether a function's entry lock set may be inferred
// from its call sites. Exported functions, main/init, functions whose
// address escapes (Ref edges), and go/defer/value literals are entry
// points: their entry set is pinned empty. Unexported functions are only
// callable from their own package, whose sources are always in the
// closure, so the intersection over visible call sites is sound.
func (e *engine) inferable(n *callgraph.Node) bool {
	if n.Lit != nil {
		return e.usage[n.Lit] == litCall
	}
	fn := n.Func
	if fn == nil || fn.Exported() || fn.Name() == "main" || fn.Name() == "init" {
		return false
	}
	return !e.refTarget[n]
}

// inferEntries computes entry lock sets top-down: sweeps in caller-first
// order intersect the held set over every call site of each inferable
// function, until no entry changes. Entry sets only shrink once a function
// is reached, so the loop converges.
func (e *engine) inferEntries() {
	e.entries = map[*callgraph.Node]*entryInfo{}
	for _, n := range e.g.Nodes {
		if e.inferable(n) {
			e.entries[n] = &entryInfo{inferred: true, removed: map[LockID]string{}}
		} else {
			e.entries[n] = &entryInfo{held: map[LockID]Mode{}}
		}
	}
	sccs := e.g.SCCs()
	var order []*callgraph.Node
	for i := len(sccs) - 1; i >= 0; i-- {
		order = append(order, sccs[i]...)
	}

	type cand struct {
		held    map[LockID]Mode
		site    string
		removed map[LockID]string
	}
	const maxSweeps = 10
	for sweep := 0; sweep < maxSweeps; sweep++ {
		cands := map[*callgraph.Node]*cand{}
		for _, n := range order {
			en := e.entries[n]
			if en.held == nil {
				continue // not reached by any processed caller yet
			}
			caller := n
			res := e.solveNode(n, en.held)
			s := &sink{onCall: func(call *ast.CallExpr, ed *callgraph.Edge, f *fact) {
				isLit := ed.Kind == callgraph.Literal
				for _, c := range ed.Callees {
					if !e.inferable(c) {
						continue
					}
					mapped := filterHeld(f.held, isLit)
					label := e.siteLabel(caller, call.Pos())
					cd := cands[c]
					if cd == nil {
						cands[c] = &cand{held: mapped, site: label, removed: map[LockID]string{}}
						continue
					}
					for id := range cd.held {
						if m, ok := mapped[id]; ok {
							cd.held[id] = minMode(cd.held[id], m)
						} else {
							delete(cd.held, id)
							cd.removed[id] = label
						}
					}
				}
			}}
			e.replayNode(n, res, s)
		}
		changed := false
		for _, n := range order {
			en := e.entries[n]
			if !en.inferred {
				continue
			}
			cd := cands[n]
			var nh map[LockID]Mode
			if cd != nil {
				nh = cd.held
			}
			if !heldEq(en.held, nh) {
				changed = true
			}
			if cd != nil {
				en.held = cd.held
				en.site = cd.site
				for id, l := range cd.removed {
					en.removed[id] = l
				}
			} else {
				en.held = nil
			}
		}
		if !changed {
			break
		}
	}
	for _, en := range e.entries {
		if en.held == nil {
			en.held = map[LockID]Mode{} // never called: dead code, no claims
		}
	}
}

// heldEq compares two entry sets, distinguishing nil (unreached) from
// empty (no locks provably held).
func heldEq(a, b map[LockID]Mode) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for id, m := range a {
		if b[id] != m {
			return false
		}
	}
	return true
}

// replayAll runs the final pass over every function with its inferred
// entry set, collecting order edges, interprocedural double-locks,
// blocking-under-lock findings, and guarded-field accesses.
func (e *engine) replayAll() {
	for _, n := range e.g.Nodes {
		n := n
		res := e.solveNode(n, e.entryOf(n))
		inRoot := n.Pkg.Types == e.rootPkg
		fnName := n.Name()
		s := &sink{
			onAcquire: func(id LockID, mode Mode, anchor, acqPos token.Pos, via []string, f *fact) {
				for _, h := range sortedIDs(f.held) {
					hm := f.held[h]
					if h == id {
						if hm == ModeRead && mode == ModeRead {
							continue // RLock is shareable
						}
						if len(via) == 0 || !inRoot {
							continue // local re-locks are lockcheck's domain
						}
						e.addFinding(&e.result.Doubles, anchor, fmt.Sprintf(
							"%s is acquired again via %s (%s) while already %s-held; sync mutexes are not re-entrant",
							id, chainLabel(fnName, via), posLabel(e.fset, acqPos), hm))
						continue
					}
					key := [2]LockID{h, id}
					if e.orderSeen[key] {
						continue
					}
					e.orderSeen[key] = true
					e.result.OrderEdges = append(e.result.OrderEdges, OrderEdge{
						From: h, To: id, Pos: anchor, AcqPos: acqPos,
						Chain: chainLabel(fnName, via), InRoot: inRoot,
					})
				}
			},
			onBlock: func(anchor, opPos token.Pos, desc string, via []string, f *fact) {
				if len(f.held) == 0 || !inRoot {
					return
				}
				msg := fmt.Sprintf("%s while holding %s", desc, holding(f.held))
				if len(via) > 0 {
					msg += fmt.Sprintf(" via %s (%s)", chainLabel(fnName, via), posLabel(e.fset, opPos))
				}
				e.addFinding(&e.result.Blocking, anchor, msg)
			},
			onAccess: func(a *FieldAccess) {
				e.result.Accesses = append(e.result.Accesses, a)
			},
		}
		e.replayNode(n, res, s)
	}
}

// addFinding appends a finding, deduplicating identical (position,
// message) pairs across replay paths.
func (e *engine) addFinding(list *[]Finding, pos token.Pos, msg string) {
	key := fmt.Sprintf("%d\x00%s", pos, msg)
	if e.findSeen[key] {
		return
	}
	e.findSeen[key] = true
	*list = append(*list, Finding{Pos: pos, Message: msg})
}
