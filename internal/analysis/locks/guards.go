package locks

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"pandia/internal/analysis"
)

// GuardDecl is one //pandia:guardedby annotation attached to a struct
// field: the field must only be accessed while holding (at least) one of
// the named sibling locks.
type GuardDecl struct {
	// Field is the annotated field object.
	Field *types.Var
	// Locks are the declared guard paths, relative to the owning struct
	// (e.g. "mu", "state.mu", "Mutex" for an embedded mutex). Multiple
	// names have any-of semantics.
	Locks []string
	// Pos is the annotation comment's position.
	Pos token.Pos
}

// structInfo describes one struct type the engine tracks: any struct with
// a direct mutex field or a guard annotation.
type structInfo struct {
	// disp renders the struct for messages: the named type's display form,
	// or the declaring variable's for anonymous structs.
	disp string
	// fields are the struct's direct fields in declaration order.
	fields []*types.Var
	// mutexPaths names the direct fields whose type is a sync mutex —
	// the candidate guards for annotation resolution and inference.
	mutexPaths []string
	// guards maps annotated fields to their declarations.
	guards map[*types.Var]*GuardDecl
	// pkg is the package the struct is declared in, for anchoring
	// annotation-error diagnostics to the right pass.
	pkg *types.Package
}

// ParseGuardAnnotation parses one comment line as a //pandia:guardedby
// directive. It returns (nil, false, nil) when the comment is not a
// guardedby directive at all, the cleaned lock paths on success, and a
// non-nil error when the directive is present but malformed. The grammar:
//
//	//pandia:guardedby(lock{,lock})
//	lock = ident{.ident}
//
// Whitespace around names is ignored; names must be non-empty Go
// identifier paths.
func ParseGuardAnnotation(text string) ([]string, bool, error) {
	body, ok := directiveBody(text)
	if !ok {
		return nil, false, nil
	}
	if !strings.HasPrefix(body, "(") {
		return nil, true, fmt.Errorf("pandia:guardedby needs a parenthesized lock list: //pandia:guardedby(mu)")
	}
	close := strings.IndexByte(body, ')')
	if close < 0 {
		return nil, true, fmt.Errorf("pandia:guardedby: missing closing parenthesis")
	}
	if rest := strings.TrimSpace(body[close+1:]); rest != "" && !strings.HasPrefix(rest, "//") {
		return nil, true, fmt.Errorf("pandia:guardedby: unexpected trailing text %q", rest)
	}
	inner := body[1:close]
	var locks []string
	for _, part := range strings.Split(inner, ",") {
		name := strings.TrimSpace(part)
		if !validLockPath(name) {
			return nil, true, fmt.Errorf("pandia:guardedby: %q is not a field path (want ident or ident.ident)", name)
		}
		locks = append(locks, name)
	}
	if len(locks) == 0 {
		return nil, true, fmt.Errorf("pandia:guardedby: empty lock list")
	}
	return locks, true, nil
}

// directiveBody strips the comment markers and the pandia:guardedby
// prefix, returning what follows.
func directiveBody(text string) (string, bool) {
	text = strings.TrimSpace(text)
	switch {
	case strings.HasPrefix(text, "//"):
		text = text[2:]
	case strings.HasPrefix(text, "/*"):
		text = strings.TrimSuffix(text[2:], "*/")
	default:
		return "", false
	}
	text = strings.TrimSpace(text)
	const prefix = "pandia:guardedby"
	if !strings.HasPrefix(text, prefix) {
		return "", false
	}
	return strings.TrimSpace(text[len(prefix):]), true
}

// validLockPath reports whether s is a dot-separated path of Go
// identifiers.
func validLockPath(s string) bool {
	if s == "" {
		return false
	}
	for _, seg := range strings.Split(s, ".") {
		if !validIdent(seg) {
			return false
		}
	}
	return true
}

func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r == '_', 'a' <= r && r <= 'z', 'A' <= r && r <= 'Z':
		case '0' <= r && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// collectStructs scans every package in the closure for struct types worth
// tracking (mutex fields or annotations), parsing guard annotations and
// validating each declared guard path against the struct's own fields.
// Malformed annotations in the root package are reported through errs.
func (e *engine) collectStructs(pkgs []*analysis.Package) {
	e.structs = make(map[*types.Var]*structInfo)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			e.structsInFile(pkg, f)
		}
	}
}

func (e *engine) structsInFile(pkg *analysis.Package, f *ast.File) {
	// Name the structs that have names: type declarations and the
	// package-level variables anonymous struct types are declared through.
	disp := make(map[*ast.StructType]string)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.TypeSpec:
			if st, ok := n.Type.(*ast.StructType); ok {
				disp[st] = shortPath(pkg.Path) + "." + n.Name.Name
			}
		case *ast.ValueSpec:
			if st, ok := n.Type.(*ast.StructType); ok && len(n.Names) > 0 {
				disp[st] = shortPath(pkg.Path) + "." + n.Names[0].Name
			}
		}
		return true
	})
	ast.Inspect(f, func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok || st.Fields == nil {
			return true
		}
		d := disp[st]
		if d == "" {
			d = shortPath(pkg.Path) + ".struct"
		}
		e.trackStruct(pkg, st, d)
		return true
	})
}

// trackStruct registers one struct type's fields if the struct has any
// mutex field or guard annotation.
func (e *engine) trackStruct(pkg *analysis.Package, st *ast.StructType, disp string) {
	info := &structInfo{disp: disp, guards: make(map[*types.Var]*GuardDecl), pkg: pkg.Types}
	type pendingGuard struct {
		fields []*types.Var
		locks  []string
		pos    token.Pos
	}
	var pending []pendingGuard
	for _, fl := range st.Fields.List {
		var fvars []*types.Var
		if len(fl.Names) == 0 { // embedded field
			if v := embeddedFieldVar(pkg.Info, fl.Type); v != nil {
				fvars = append(fvars, v)
			}
		}
		for _, name := range fl.Names {
			if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
				fvars = append(fvars, v)
			}
		}
		if len(fvars) == 0 {
			continue
		}
		info.fields = append(info.fields, fvars...)
		for _, v := range fvars {
			if isMutexType(v.Type()) {
				info.mutexPaths = append(info.mutexPaths, v.Name())
			}
		}
		for _, cg := range []*ast.CommentGroup{fl.Doc, fl.Comment} {
			if cg == nil {
				continue
			}
			for _, c := range cg.List {
				locks, isGuard, err := ParseGuardAnnotation(c.Text)
				if !isGuard {
					continue
				}
				if err != nil {
					e.guardErr(pkg, c.Pos(), err.Error())
					continue
				}
				pending = append(pending, pendingGuard{fields: fvars, locks: locks, pos: c.Pos()})
			}
		}
	}
	if len(info.mutexPaths) == 0 && len(pending) == 0 {
		return
	}
	// Resolve declared guard paths against the struct's own field tree.
	for _, pg := range pending {
		valid := pg.locks[:0]
		for _, lp := range pg.locks {
			if e.resolveGuardPath(info, lp) {
				valid = append(valid, lp)
			} else {
				e.guardErr(pkg, pg.pos,
					fmt.Sprintf("pandia:guardedby(%s): no mutex field %q in this struct", lp, lp))
			}
		}
		if len(valid) == 0 {
			continue
		}
		for _, v := range pg.fields {
			if isMutexType(v.Type()) {
				e.guardErr(pkg, pg.pos, "pandia:guardedby on a mutex field guards nothing")
				continue
			}
			info.guards[v] = &GuardDecl{Field: v, Locks: valid, Pos: pg.pos}
		}
	}
	for _, v := range info.fields {
		e.structs[v] = info
	}
}

// embeddedFieldVar resolves the field object of an embedded field from its
// type expression: for embedded fields go/types records the implicit field
// *Var in Info.Defs keyed by the type-name identifier.
func embeddedFieldVar(info *types.Info, t ast.Expr) *types.Var {
	x := ast.Unparen(t)
	if s, ok := x.(*ast.StarExpr); ok {
		x = ast.Unparen(s.X)
	}
	var id *ast.Ident
	switch x := x.(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil
	}
	v, _ := info.Defs[id].(*types.Var)
	return v
}

// resolveGuardPath checks that a declared guard path names a mutex
// reachable through the struct's fields.
func (e *engine) resolveGuardPath(info *structInfo, path string) bool {
	segs := strings.Split(path, ".")
	fields := info.fields
	for i, seg := range segs {
		var f *types.Var
		for _, v := range fields {
			if v.Name() == seg {
				f = v
				break
			}
		}
		if f == nil {
			return false
		}
		if i == len(segs)-1 {
			return isMutexType(f.Type())
		}
		t := f.Type()
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			return false
		}
		fields = fields[:0:0]
		for j := 0; j < st.NumFields(); j++ {
			fields = append(fields, st.Field(j))
		}
	}
	return false
}

// guardErr records a malformed-annotation diagnostic, anchored only when
// the annotation lives in the root package (dependency packages report
// their own when vet visits them).
func (e *engine) guardErr(pkg *analysis.Package, pos token.Pos, msg string) {
	if pkg.Types != e.pass.Pkg {
		return
	}
	e.result.GuardErrs = append(e.result.GuardErrs, analysis.Diagnostic{Pos: pos, Message: msg})
}
