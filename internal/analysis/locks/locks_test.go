package locks

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseGuardAnnotation(t *testing.T) {
	cases := []struct {
		text    string
		locks   []string
		isGuard bool
		errPart string
	}{
		{"//pandia:guardedby(mu)", []string{"mu"}, true, ""},
		{"//pandia:guardedby(mu, mu2)", []string{"mu", "mu2"}, true, ""},
		{"//pandia:guardedby( state.mu )", []string{"state.mu"}, true, ""},
		{"/*pandia:guardedby(Mutex)*/", []string{"Mutex"}, true, ""},
		{"//pandia:guardedby(mu) // promoted from the old comment", []string{"mu"}, true, ""},
		{"// plain comment", nil, false, ""},
		{"//pandia:noalloc", nil, false, ""},
		{"//pandia:guardedby", nil, true, "parenthesized lock list"},
		{"//pandia:guardedby mu", nil, true, "parenthesized lock list"},
		{"//pandia:guardedby(mu", nil, true, "missing closing parenthesis"},
		{"//pandia:guardedby()", nil, true, "not a field path"},
		{"//pandia:guardedby(mu,)", nil, true, "not a field path"},
		{"//pandia:guardedby(1mu)", nil, true, "not a field path"},
		{"//pandia:guardedby(mu.)", nil, true, "not a field path"},
		{"//pandia:guardedby(a b)", nil, true, "not a field path"},
		{"//pandia:guardedby(mu) trailing", nil, true, "unexpected trailing text"},
	}
	for _, c := range cases {
		locks, isGuard, err := ParseGuardAnnotation(c.text)
		if isGuard != c.isGuard {
			t.Errorf("%q: isGuard = %v, want %v", c.text, isGuard, c.isGuard)
			continue
		}
		if c.errPart != "" {
			if err == nil || !strings.Contains(err.Error(), c.errPart) {
				t.Errorf("%q: err = %v, want containing %q", c.text, err, c.errPart)
			}
			continue
		}
		if err != nil {
			t.Errorf("%q: unexpected error %v", c.text, err)
			continue
		}
		if !reflect.DeepEqual(locks, c.locks) {
			t.Errorf("%q: locks = %v, want %v", c.text, locks, c.locks)
		}
	}
}

func TestModeAndMinMode(t *testing.T) {
	if ModeRead.String() != "read" || ModeWrite.String() != "write" {
		t.Fatalf("mode names: %v %v", ModeRead, ModeWrite)
	}
	if minMode(ModeRead, ModeWrite) != ModeRead || minMode(ModeWrite, ModeWrite) != ModeWrite {
		t.Fatal("minMode is not the weaker mode")
	}
}

func TestValidLockPath(t *testing.T) {
	for path, want := range map[string]bool{
		"mu": true, "state.mu": true, "_m1.X_y": true,
		"": false, ".": false, "a..b": false, "9a": false, "a-b": false,
	} {
		if got := validLockPath(path); got != want {
			t.Errorf("validLockPath(%q) = %v, want %v", path, got, want)
		}
	}
}
