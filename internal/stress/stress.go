// Package stress defines the synthetic stress applications the machine
// description generator runs to saturate individual resources (§3 of the
// paper): tight CPU loops to measure core instruction throughput, and
// streaming array scans sized to the storage at the far end of each memory
// link to measure per-link and aggregate bandwidths.
//
// On real hardware these would be carefully unrolled loops over arrays; on
// the simulated testbed they are workload truths whose demand on the target
// resource vastly exceeds any plausible capacity, so the measured rate is
// the capacity itself. The array-sizing discipline of §3.1 survives as the
// working-set size: an L3 stress almost fills the cache, a DRAM stress uses
// at least 100x the last-level cache so that nearly every access misses.
package stress

import (
	"fmt"

	"pandia/internal/counters"
	"pandia/internal/simhw"
)

// Saturate is the offered demand used to swamp any resource; the measured
// throughput then equals the achievable capacity. A measured rate close to
// Saturate means the resource did not constrain the stress at all (e.g. a
// machine without that cache level).
const Saturate = 1e6

// Target names the resource a stress application saturates.
type Target int

const (
	// CPU saturates a core's instruction issue (§3.2). Its data set fits
	// in L1 so no memory link is touched.
	CPU Target = iota
	// L1 saturates a core's L1 link.
	L1
	// L2 saturates a core's L2 link.
	L2
	// L3 saturates the socket's L3: per-core link when run on one core,
	// aggregate when run on all cores of a socket (§3.1).
	L3
	// DRAM saturates a socket's memory links.
	DRAM
	// Interconnect saturates a socket-pair link by streaming from memory
	// bound to a remote socket.
	Interconnect
)

// String names the target.
func (t Target) String() string {
	switch t {
	case CPU:
		return "cpu"
	case L1:
		return "l1"
	case L2:
		return "l2"
	case L3:
		return "l3"
	case DRAM:
		return "dram"
	case Interconnect:
		return "interconnect"
	default:
		return fmt.Sprintf("Target(%d)", int(t))
	}
}

// App builds the stress application for a target. l3SizeMB is the OS-visible
// last-level cache size, used to size the arrays; threadsSharing is how many
// stress threads will divide the target storage between them (each thread
// accesses a unique set of cache lines, §3.1).
func App(target Target, l3SizeMB float64, threadsSharing int) simhw.WorkloadTruth {
	if threadsSharing < 1 {
		threadsSharing = 1
	}
	w := simhw.WorkloadTruth{
		Name:         fmt.Sprintf("stress-%s", target),
		SeqTime:      1,
		ParallelFrac: 1,
		LoadBalance:  1,
	}
	switch target {
	case CPU:
		// Integer operations on an L1-resident data set, unrolled to avoid
		// pipeline and branch stalls (§3.2).
		w.Demand = counters.Rates{Instr: Saturate}
		w.WorkingSetMB = 0.02
	case L1:
		w.Demand = counters.Rates{Instr: 1, L1: Saturate}
		w.WorkingSetMB = 0.02
		w.MemBoundFrac = 1
	case L2:
		w.Demand = counters.Rates{Instr: 1, L2: Saturate}
		w.WorkingSetMB = 0.2
		w.MemBoundFrac = 1
	case L3:
		// Almost fill the cache without spilling: the threads sharing the
		// socket divide 80% of the capacity between them.
		w.Demand = counters.Rates{Instr: 1, L3: Saturate}
		w.WorkingSetMB = 0.8 * l3SizeMB / float64(threadsSharing)
		w.MemBoundFrac = 1
	case DRAM, Interconnect:
		// "We make the array at least 100 times the size of the last level
		// of cache" (§3.1); every access misses.
		w.Demand = counters.Rates{Instr: 1, DRAM: Saturate}
		w.WorkingSetMB = 100 * l3SizeMB / float64(threadsSharing)
		if w.WorkingSetMB < 1 {
			w.WorkingSetMB = 1
		}
		w.MemBoundFrac = 1
	}
	return w
}

// Background is the core-local busy loop used to occupy otherwise-idle
// cores during profiling, neutralising Turbo Boost effects (§6.3). It
// demands little enough not to perturb shared resources; the testbed's
// PowerFilled mode models its effect on frequency directly.
func Background() simhw.WorkloadTruth {
	return simhw.WorkloadTruth{
		Name:         "stress-background",
		SeqTime:      1,
		ParallelFrac: 1,
		Demand:       counters.Rates{Instr: 0.01},
	}
}
