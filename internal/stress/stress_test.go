package stress

import (
	"strings"
	"testing"

	"pandia/internal/simhw"
	"pandia/internal/topology"
)

func TestAppsAreValidWorkloads(t *testing.T) {
	for _, target := range []Target{CPU, L1, L2, L3, DRAM, Interconnect} {
		for _, threads := range []int{1, 8} {
			w := App(target, 45, threads)
			if err := (&w).Validate(); err != nil {
				t.Errorf("%v x%d: %v", target, threads, err)
			}
			if !strings.HasPrefix(w.Name, "stress-") {
				t.Errorf("%v: name %q", target, w.Name)
			}
		}
	}
	bg := Background()
	if err := (&bg).Validate(); err != nil {
		t.Errorf("background: %v", err)
	}
}

func TestAppTargetsTheRightResource(t *testing.T) {
	l3 := 45.0
	cases := map[Target]func(w simhw.WorkloadTruth) float64{
		CPU:          func(w simhw.WorkloadTruth) float64 { return w.Demand.Instr },
		L1:           func(w simhw.WorkloadTruth) float64 { return w.Demand.L1 },
		L2:           func(w simhw.WorkloadTruth) float64 { return w.Demand.L2 },
		L3:           func(w simhw.WorkloadTruth) float64 { return w.Demand.L3 },
		DRAM:         func(w simhw.WorkloadTruth) float64 { return w.Demand.DRAM },
		Interconnect: func(w simhw.WorkloadTruth) float64 { return w.Demand.DRAM },
	}
	for target, get := range cases {
		w := App(target, l3, 1)
		if get(w) < Saturate {
			t.Errorf("%v: target demand %g below Saturate", target, get(w))
		}
	}
}

func TestArraySizingDiscipline(t *testing.T) {
	l3 := 45.0
	// L3 stress almost fills the cache; with k threads each takes a share.
	solo := App(L3, l3, 1)
	if solo.WorkingSetMB <= 0.5*l3 || solo.WorkingSetMB >= l3 {
		t.Errorf("solo L3 working set %g, want most of %g without spilling", solo.WorkingSetMB, l3)
	}
	eight := App(L3, l3, 8)
	if eight.WorkingSetMB*8 >= l3 {
		t.Errorf("8-thread L3 working sets total %g, spills the %g cache", eight.WorkingSetMB*8, l3)
	}
	// DRAM stress uses at least 100x the LLC (§3.1).
	dram := App(DRAM, l3, 1)
	if dram.WorkingSetMB < 100*l3 {
		t.Errorf("DRAM working set %g below 100x LLC", dram.WorkingSetMB)
	}
	// Cache-less machine (l3 = 0): working set stays positive.
	if w := App(DRAM, 0, 1); w.WorkingSetMB <= 0 {
		t.Errorf("cache-less DRAM working set %g", w.WorkingSetMB)
	}
	// Degenerate thread count is clamped.
	if w := App(L3, l3, 0); w.WorkingSetMB <= 0 {
		t.Errorf("zero-thread app working set %g", w.WorkingSetMB)
	}
}

func TestTargetString(t *testing.T) {
	want := map[Target]string{
		CPU: "cpu", L1: "l1", L2: "l2", L3: "l3", DRAM: "dram", Interconnect: "interconnect",
	}
	for tg, w := range want {
		if got := tg.String(); got != w {
			t.Errorf("%d.String() = %q, want %q", tg, got, w)
		}
	}
	if got := Target(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown target String() = %q", got)
	}
}

// TestStressSaturatesOnTestbed is the end-to-end property the machine
// description generator relies on: each stress app, run on a testbed,
// measures approximately the targeted capacity.
func TestStressSaturatesOnTestbed(t *testing.T) {
	mt := simhw.X32Truth()
	mt.NoiseSigma = 0
	tb, err := simhw.NewTestbed(mt)
	if err != nil {
		t.Fatal(err)
	}
	solo := []topology.Context{{Socket: 0, Core: 0, Slot: 0}}
	res, err := tb.Run(simhw.RunConfig{Workload: App(CPU, mt.L3SizeMB, 1), Placement: solo})
	if err != nil {
		t.Fatal(err)
	}
	if rate := res.Sample.Rates().Instr; rate < 0.85*mt.CoreInstrRate || rate > mt.CoreInstrRate {
		t.Errorf("CPU stress measured %g, capacity %g", rate, mt.CoreInstrRate)
	}
}
