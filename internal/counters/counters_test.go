package counters

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func sample() Sample {
	return Sample{
		Elapsed:           2,
		Instructions:      14,
		L1Bytes:           200,
		L2Bytes:           100,
		L3Bytes:           60,
		DRAMBytes:         80,
		InterconnectBytes: 20,
		Threads:           2,
	}
}

func TestValidate(t *testing.T) {
	if err := sample().Validate(); err != nil {
		t.Fatalf("valid sample rejected: %v", err)
	}
	bad := sample()
	bad.Elapsed = 0
	if bad.Validate() == nil {
		t.Error("zero elapsed accepted")
	}
	bad = sample()
	bad.DRAMBytes = -1
	if bad.Validate() == nil {
		t.Error("negative dram accepted")
	}
	bad = sample()
	bad.Threads = -2
	if bad.Validate() == nil {
		t.Error("negative threads accepted")
	}
}

// TestValidateNonFinite tables NaN/±Inf/negative injections over every
// float field and checks that the error names the corrupted field.
func TestValidateNonFinite(t *testing.T) {
	fields := []struct {
		name string
		set  func(*Sample, float64)
	}{
		{"elapsed", func(s *Sample, v float64) { s.Elapsed = v }},
		{"instructions", func(s *Sample, v float64) { s.Instructions = v }},
		{"l1Bytes", func(s *Sample, v float64) { s.L1Bytes = v }},
		{"l2Bytes", func(s *Sample, v float64) { s.L2Bytes = v }},
		{"l3Bytes", func(s *Sample, v float64) { s.L3Bytes = v }},
		{"dramBytes", func(s *Sample, v float64) { s.DRAMBytes = v }},
		{"interconnectBytes", func(s *Sample, v float64) { s.InterconnectBytes = v }},
	}
	values := []struct {
		label string
		val   float64
	}{
		{"NaN", math.NaN()},
		{"+Inf", math.Inf(1)},
		{"-Inf", math.Inf(-1)},
		{"negative", -3},
	}
	for _, f := range fields {
		for _, v := range values {
			t.Run(f.name+"/"+v.label, func(t *testing.T) {
				s := sample()
				f.set(&s, v.val)
				err := s.Validate()
				if err == nil {
					t.Fatalf("%s=%g accepted", f.name, v.val)
				}
				if !strings.Contains(err.Error(), f.name) {
					t.Errorf("error %q does not name field %s", err, f.name)
				}
			})
		}
	}
	// Zero counters (dropout) stay valid: only repetition can catch them.
	s := sample()
	s.L2Bytes, s.DRAMBytes = 0, 0
	if err := s.Validate(); err != nil {
		t.Errorf("zeroed counters rejected: %v", err)
	}
}

func TestRates(t *testing.T) {
	r := sample().Rates()
	want := Rates{Instr: 7, L1: 100, L2: 50, L3: 30, DRAM: 40, Interconnect: 10}
	if r != want {
		t.Fatalf("Rates() = %+v, want %+v", r, want)
	}
}

func TestRatesZeroElapsed(t *testing.T) {
	s := Sample{Elapsed: 0, Instructions: 5}
	if got := s.Rates(); got != (Rates{}) {
		t.Errorf("Rates with zero elapsed = %+v, want zero", got)
	}
}

func TestPerThreadRates(t *testing.T) {
	r := sample().PerThreadRates()
	if r.Instr != 3.5 || r.DRAM != 20 {
		t.Fatalf("PerThreadRates = %+v", r)
	}
	one := sample()
	one.Threads = 1
	if got := one.PerThreadRates(); got != one.Rates() {
		t.Errorf("single-thread PerThreadRates = %+v, want whole-workload rates", got)
	}
	zero := sample()
	zero.Threads = 0
	if got := zero.PerThreadRates(); got != zero.Rates() {
		t.Errorf("zero-thread PerThreadRates = %+v, want whole-workload rates", got)
	}
}

func TestScaleAdd(t *testing.T) {
	a := Rates{Instr: 1, L1: 2, L2: 3, L3: 4, DRAM: 5, Interconnect: 6}
	b := a.Scale(2)
	if b.L3 != 8 || b.Instr != 2 {
		t.Errorf("Scale = %+v", b)
	}
	c := a.Add(b)
	if c.DRAM != 15 || c.Interconnect != 18 {
		t.Errorf("Add = %+v", c)
	}
}

func TestMax(t *testing.T) {
	r := Rates{Instr: 7, L1: 1, L2: 2, L3: 3, DRAM: 40, Interconnect: 5}
	if got := r.Max(); got != 40 {
		t.Errorf("Max = %g, want 40", got)
	}
	r2 := Rates{Instr: 9}
	if got := r2.Max(); got != 9 {
		t.Errorf("Max = %g, want 9", got)
	}
}

func TestString(t *testing.T) {
	s := (Rates{Instr: 7}).String()
	if !strings.Contains(s, "instr=7.00") {
		t.Errorf("String() = %q", s)
	}
}

// Property: Scale distributes over Add.
func TestQuickScaleAddDistributive(t *testing.T) {
	f := func(a, b Rates, k float64) bool {
		if math.IsNaN(k) || math.IsInf(k, 0) || math.Abs(k) > 1e6 {
			return true
		}
		for _, v := range []float64{a.Instr, a.DRAM, b.Instr, b.DRAM, a.L1, b.L1, a.L2, b.L2, a.L3, b.L3, a.Interconnect, b.Interconnect} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				return true
			}
		}
		lhs := a.Add(b).Scale(k)
		rhs := a.Scale(k).Add(b.Scale(k))
		close := func(x, y float64) bool {
			return math.Abs(x-y) <= 1e-6*(1+math.Abs(x)+math.Abs(y))
		}
		return close(lhs.Instr, rhs.Instr) && close(lhs.L1, rhs.L1) &&
			close(lhs.L2, rhs.L2) && close(lhs.L3, rhs.L3) &&
			close(lhs.DRAM, rhs.DRAM) && close(lhs.Interconnect, rhs.Interconnect)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: rates derived from a valid sample are non-negative and
// proportional to 1/elapsed.
func TestQuickRatesScaleWithElapsed(t *testing.T) {
	f := func(instr, dram uint16, elapsedQ uint8) bool {
		e := 1 + float64(elapsedQ)
		s := Sample{Elapsed: e, Instructions: float64(instr), DRAMBytes: float64(dram), Threads: 1}
		r := s.Rates()
		s2 := s
		s2.Elapsed = 2 * e
		r2 := s2.Rates()
		return math.Abs(r.Instr-2*r2.Instr) < 1e-9 && math.Abs(r.DRAM-2*r2.DRAM) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
