// Package counters defines the virtual performance-counter sample that the
// simulated hardware testbed emits for each run, standing in for the CPU
// performance counters the paper reads (instructions retired, per-level
// cache traffic, DRAM and interconnect bytes).
//
// Units follow the paper's convention (§3): any consistent scale works
// because the model only ever compares demands against capacities measured
// with the same counters. Throughout this repository rates are "units per
// second" with bandwidths on a GB/s-like scale and instruction rates on a
// Ginstr/s-like scale.
package counters

import (
	"fmt"
	"math"
)

// Sample aggregates the counters observed over one run of a workload.
type Sample struct {
	// Elapsed is the wall-clock duration of the run in seconds.
	Elapsed float64 `json:"elapsed"` //pandia:unit seconds
	// Instructions is the total useful instructions executed by the
	// workload's threads (excluding busy-wait spinning, which good
	// implementations keep off the pipeline; §2.3).
	Instructions float64 `json:"instructions"` //pandia:unit instructions
	// L1Bytes .. DRAMBytes are total traffic volumes at each level of the
	// memory hierarchy.
	L1Bytes   float64 `json:"l1Bytes"`   //pandia:unit bytes
	L2Bytes   float64 `json:"l2Bytes"`   //pandia:unit bytes
	L3Bytes   float64 `json:"l3Bytes"`   //pandia:unit bytes
	DRAMBytes float64 `json:"dramBytes"` //pandia:unit bytes
	// InterconnectBytes is the total traffic crossing socket-pair links.
	InterconnectBytes float64 `json:"interconnectBytes"` //pandia:unit bytes
	// Threads is the number of workload threads active during the run.
	Threads int `json:"threads"`
}

// Validate reports whether the sample is internally consistent: a positive
// finite elapsed time, a non-negative thread count, and finite non-negative
// counter volumes. Corrupted counter reads (NaN/±Inf, the fault model of
// internal/faults) are named by field so quality reports can say which
// counter went bad.
func (s Sample) Validate() error {
	if math.IsNaN(s.Elapsed) || math.IsInf(s.Elapsed, 0) {
		return fmt.Errorf("counters: non-finite elapsed time %g", s.Elapsed)
	}
	if s.Elapsed <= 0 {
		return fmt.Errorf("counters: non-positive elapsed time %g", s.Elapsed)
	}
	if s.Threads < 0 {
		return fmt.Errorf("counters: negative thread count %d", s.Threads)
	}
	for _, v := range []struct {
		name string
		val  float64
	}{
		{"instructions", s.Instructions},
		{"l1Bytes", s.L1Bytes},
		{"l2Bytes", s.L2Bytes},
		{"l3Bytes", s.L3Bytes},
		{"dramBytes", s.DRAMBytes},
		{"interconnectBytes", s.InterconnectBytes},
	} {
		switch {
		case math.IsNaN(v.val):
			return fmt.Errorf("counters: NaN %s", v.name)
		case math.IsInf(v.val, 0):
			return fmt.Errorf("counters: infinite %s %g", v.name, v.val)
		case v.val < 0:
			return fmt.Errorf("counters: negative %s %g", v.name, v.val)
		}
	}
	return nil
}

// Rates converts the cumulative sample into whole-workload average rates
// (units per second).
func (s Sample) Rates() Rates {
	if s.Elapsed <= 0 {
		return Rates{}
	}
	inv := 1 / s.Elapsed
	return Rates{
		Instr:        s.Instructions * inv,
		L1:           s.L1Bytes * inv,
		L2:           s.L2Bytes * inv,
		L3:           s.L3Bytes * inv,
		DRAM:         s.DRAMBytes * inv,
		Interconnect: s.InterconnectBytes * inv,
	}
}

// PerThreadRates divides the whole-workload rates by the thread count,
// yielding the average per-thread demand rates the workload model stores
// (§4.1). It returns the whole-workload rates unchanged when the sample has
// zero or one thread.
func (s Sample) PerThreadRates() Rates {
	r := s.Rates()
	if s.Threads > 1 {
		r = r.Scale(1 / float64(s.Threads))
	}
	return r
}

// Rates is a vector of average resource-consumption rates. It mirrors the
// paper's per-thread demand vector d.
type Rates struct {
	Instr        float64 `json:"instr"`        //pandia:unit instructions/sec
	L1           float64 `json:"l1"`           //pandia:unit bytes/sec
	L2           float64 `json:"l2"`           //pandia:unit bytes/sec
	L3           float64 `json:"l3"`           //pandia:unit bytes/sec
	DRAM         float64 `json:"dram"`         //pandia:unit bytes/sec
	Interconnect float64 `json:"interconnect"` //pandia:unit bytes/sec
}

// Scale returns the rates multiplied by k.
func (r Rates) Scale(k float64) Rates {
	return Rates{
		Instr:        r.Instr * k,
		L1:           r.L1 * k,
		L2:           r.L2 * k,
		L3:           r.L3 * k,
		DRAM:         r.DRAM * k,
		Interconnect: r.Interconnect * k,
	}
}

// Add returns the element-wise sum of two rate vectors.
func (r Rates) Add(o Rates) Rates {
	return Rates{
		Instr:        r.Instr + o.Instr,
		L1:           r.L1 + o.L1,
		L2:           r.L2 + o.L2,
		L3:           r.L3 + o.L3,
		DRAM:         r.DRAM + o.DRAM,
		Interconnect: r.Interconnect + o.Interconnect,
	}
}

// Max returns the largest component of the vector.
func (r Rates) Max() float64 {
	m := r.Instr
	for _, v := range []float64{r.L1, r.L2, r.L3, r.DRAM, r.Interconnect} {
		if v > m {
			m = v
		}
	}
	return m
}

// String renders the rates compactly for logs and reports.
func (r Rates) String() string {
	return fmt.Sprintf("instr=%.2f l1=%.1f l2=%.1f l3=%.1f dram=%.1f ic=%.1f",
		r.Instr, r.L1, r.L2, r.L3, r.DRAM, r.Interconnect)
}
