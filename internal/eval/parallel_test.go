package eval

import (
	"errors"
	"sync/atomic"
	"testing"

	"pandia/internal/analysis/leaktest"
)

// TestParallelEachNCoversAll verifies the atomic-counter dispatcher visits
// every index exactly once, for worker counts around the chunk boundaries.
func TestParallelEachNCoversAll(t *testing.T) {
	defer leaktest.Check(t)()
	for _, workers := range []int{1, 2, 3, 8, 64} {
		for _, n := range []int{0, 1, parallelChunk - 1, parallelChunk, parallelChunk + 1, 100} {
			hits := make([]int32, n)
			err := parallelEachN(n, workers, func(i int) error {
				atomic.AddInt32(&hits[i], 1)
				return nil
			})
			if err != nil {
				t.Fatalf("workers=%d n=%d: %v", workers, n, err)
			}
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, h)
				}
			}
		}
	}
}

// TestParallelEachNErrorBailout covers the error path: the returned error is
// one produced by fn, later chunks stop being claimed, and no worker
// goroutine leaks (the channel-based dispatcher's historical failure mode).
func TestParallelEachNErrorBailout(t *testing.T) {
	defer leaktest.Check(t)()
	sentinel := errors.New("boom")
	var calls atomic.Int64
	release := make(chan struct{})
	err := parallelEachN(1000, 4, func(i int) error {
		calls.Add(1)
		if i == 0 {
			// Fail on the first index while the other workers are parked, so
			// the stop flag is observably set before they claim more chunks.
			err := sentinel
			close(release)
			return err
		}
		<-release
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the sentinel", err)
	}
	// The failing worker quits after its chunk; the three blocked workers
	// finish at most one chunk each after release, then see the stop flag.
	if got := calls.Load(); got > 4*2*parallelChunk {
		t.Fatalf("ran %d items after an early error; dispatcher did not stop", got)
	}
}

// TestParallelEachNSerialError pins the serial path's deterministic
// semantics: the first error returns immediately, later indices never run.
func TestParallelEachNSerialError(t *testing.T) {
	sentinel := errors.New("boom")
	var calls int
	err := parallelEachN(100, 1, func(i int) error {
		calls++
		if i == 37 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the sentinel", err)
	}
	if calls != 38 {
		t.Fatalf("serial path ran %d calls, want 38", calls)
	}
}
