package eval

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"pandia/internal/analysis/leaktest"
	"pandia/internal/bench"
)

func TestNormalize(t *testing.T) {
	norm := Normalize([]float64{100, 50, 200})
	want := []float64{0.5, 1, 0.25}
	for i := range want {
		if math.Abs(norm[i]-want[i]) > 1e-12 {
			t.Errorf("norm[%d] = %g, want %g", i, norm[i], want[i])
		}
	}
}

func TestComputeMetricsPerfect(t *testing.T) {
	times := []float64{10, 5, 20, 8}
	m := ComputeMetrics(times, times)
	if m.MeanErr != 0 || m.MedianErr != 0 || m.OffsetMean != 0 || m.OffsetMedian != 0 {
		t.Errorf("perfect prediction has non-zero errors: %v", m)
	}
}

func TestComputeMetricsConstantOffset(t *testing.T) {
	// A prediction whose normalised curve is a constant distance below the
	// measurement has error > 0 but offset error ~ 0.
	meas := []float64{10, 5, 20, 8, 13, 6}
	pred := make([]float64, len(meas))
	normM := Normalize(meas)
	for i := range pred {
		// Construct predicted times whose normalised value is measured-0.1.
		pred[i] = 1 / (normM[i] - 0.1)
	}
	// Renormalisation pins both curves' maxima to 1, so a pure additive
	// shift cannot survive it; the offset correction still removes most of
	// the systematic part.
	m := ComputeMetrics(meas, pred)
	if m.MeanErr <= m.OffsetMean {
		t.Errorf("offset error (%g) should be below raw error (%g) for a shifted curve",
			m.OffsetMean, m.MeanErr)
	}
}

func TestComputeMetricsDegenerate(t *testing.T) {
	if m := ComputeMetrics(nil, nil); m != (Metrics{}) {
		t.Errorf("empty metrics = %v", m)
	}
	if m := ComputeMetrics([]float64{1, 2}, []float64{1}); m != (Metrics{}) {
		t.Errorf("mismatched metrics = %v", m)
	}
}

func TestMeanMedian(t *testing.T) {
	if got := mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("mean = %g", got)
	}
	if got := median([]float64{5, 1, 9}); got != 5 {
		t.Errorf("odd median = %g", got)
	}
	if got := median([]float64{1, 2, 3, 10}); got != 2.5 {
		t.Errorf("even median = %g", got)
	}
	if got := median(nil); got != 0 {
		t.Errorf("empty median = %g", got)
	}
}

// x32Harness is shared across tests; building it costs one machine
// description plus shape enumeration.
func x32Harness(t *testing.T) *Harness {
	t.Helper()
	h, err := NewHarness("x3-2", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHarnessUnknownMachine(t *testing.T) {
	if _, err := NewHarness("z9", 0, 1); err == nil {
		t.Error("unknown machine accepted")
	}
}

func TestCurveQuality(t *testing.T) {
	h := x32Harness(t)
	for _, name := range []string{"MD", "CG", "EP"} {
		e, err := bench.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		c, err := h.CurveFor(e)
		if err != nil {
			t.Fatal(err)
		}
		if len(c.Measured) != len(h.Shapes) || len(c.Predicted) != len(h.Shapes) {
			t.Fatalf("%s: curve sizes wrong", name)
		}
		m := c.Metrics()
		if m.MedianErr > 25 {
			t.Errorf("%s: median error %.1f%%, want < 25%% (paper: ~4-8%%)", name, m.MedianErr)
		}
		// The offset correction targets the mean, so the median can move
		// either way a little; it must stay in the same ballpark.
		if m.OffsetMedian > 1.5*m.MedianErr+1 {
			t.Errorf("%s: offset median %.1f%% far above raw median %.1f%%", name, m.OffsetMedian, m.MedianErr)
		}
		if gap := c.BestGap(); gap < 0 || gap > 15 {
			t.Errorf("%s: best-placement gap %.2f%%, want small and non-negative", name, gap)
		}
		if pt := c.PeakThreads(); pt < 1 || pt > h.TB.Machine().TotalContexts() {
			t.Errorf("%s: peak threads %d out of range", name, pt)
		}
	}
}

func TestCurveCaching(t *testing.T) {
	defer leaktest.Check(t)()
	h := x32Harness(t)
	e, _ := bench.ByName("EP")
	a, err := h.MeasureAll(e)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.MeasureAll(e)
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Error("measurement cache missed")
	}
}

func TestErrorSummary(t *testing.T) {
	h := x32Harness(t)
	entries := []bench.Entry{}
	for _, n := range []string{"MD", "CG"} {
		e, _ := bench.ByName(n)
		entries = append(entries, e)
	}
	s, err := ErrorSummary(h, entries)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.PerWorkload) != 2 {
		t.Fatalf("summary rows = %d", len(s.PerWorkload))
	}
	if s.MedianErr <= 0 || s.MedianErr > 30 {
		t.Errorf("median error = %.1f%%, implausible", s.MedianErr)
	}
	var buf bytes.Buffer
	if err := RenderSummary(&buf, s); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "MD") || !strings.Contains(buf.String(), "median err") {
		t.Errorf("summary rendering incomplete:\n%s", buf.String())
	}
}

func TestTurboStudy(t *testing.T) {
	h, err := NewHarness("x5-2", 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	tc, err := TurboStudy(h.TB)
	if err != nil {
		t.Fatal(err)
	}
	n := h.TB.Machine().TotalContexts()
	if len(tc.TurboIdle) != n || len(tc.TurboBackground) != n || len(tc.Nominal) != n {
		t.Fatalf("turbo curves truncated: %d/%d/%d", len(tc.TurboIdle), len(tc.TurboBackground), len(tc.Nominal))
	}
	// Solo: idle-turbo beats background-filled beats nominal (Fig. 14).
	if !(tc.TurboIdle[0].PerThreadRate > tc.TurboBackground[0].PerThreadRate &&
		tc.TurboBackground[0].PerThreadRate > tc.Nominal[0].PerThreadRate) {
		t.Errorf("solo ordering wrong: %g, %g, %g",
			tc.TurboIdle[0].PerThreadRate, tc.TurboBackground[0].PerThreadRate, tc.Nominal[0].PerThreadRate)
	}
	// With every core busy the turbo lines converge.
	cores := h.TB.Machine().TotalCores()
	last1 := tc.TurboIdle[cores-1].PerThreadRate
	last2 := tc.TurboBackground[cores-1].PerThreadRate
	if math.Abs(last1-last2)/last2 > 0.02 {
		t.Errorf("turbo lines did not converge at full load: %g vs %g", last1, last2)
	}
	// Past one thread per core, SMT halves per-thread throughput.
	full := tc.TurboBackground[n-1].PerThreadRate
	half := tc.TurboBackground[cores-1].PerThreadRate
	if full >= half*0.8 {
		t.Errorf("per-thread rate did not drop with SMT packing: %g vs %g", full, half)
	}
	var buf bytes.Buffer
	if err := RenderTurbo(&buf, tc); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != n+1 {
		t.Errorf("turbo CSV has %d lines, want %d", lines, n+1)
	}
}

func TestSweepStudy(t *testing.T) {
	h := x32Harness(t)
	var entries []bench.Entry
	for _, n := range []string{"MD", "Swim"} {
		e, _ := bench.ByName(n)
		entries = append(entries, e)
	}
	s, err := SweepStudy(h, entries)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != 2 {
		t.Fatalf("sweep rows = %d", len(s.Rows))
	}
	for _, r := range s.Rows {
		if r.CostRatio <= 1 {
			t.Errorf("%s: sweep cost ratio %.2f, want > 1 (paper: 4-8x)", r.Workload, r.CostRatio)
		}
		if r.SweepBestGap < 0 {
			t.Errorf("%s: negative sweep gap %.2f", r.Workload, r.SweepBestGap)
		}
	}
	var buf bytes.Buffer
	if err := RenderSweep(&buf, s); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mean cost ratio") {
		t.Error("sweep rendering incomplete")
	}
}

func TestFourSocketClasses(t *testing.T) {
	h, err := NewHarness("x2-4", 400, 1)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := bench.ByName("CG")
	rows, err := FourSocket(h, []bench.Entry{e})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	for name, v := range map[string]float64{"two": r.TwoSocket, "twenty": r.TwentyCore, "whole": r.Whole} {
		if v < 0 || v > 120 {
			t.Errorf("%s-class error %.1f%% implausible", name, v)
		}
	}
	var buf bytes.Buffer
	if err := RenderFourSocket(&buf, h.Key, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "CG") {
		t.Error("four-socket rendering incomplete")
	}
}

func TestCurveCSVAndASCII(t *testing.T) {
	h := x32Harness(t)
	e, _ := bench.ByName("EP")
	c, err := h.CurveFor(e)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCurveCSV(&buf, c); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(c.Shapes)+1 {
		t.Errorf("CSV rows = %d, want %d", len(lines), len(c.Shapes)+1)
	}
	if !strings.HasPrefix(lines[0], "placement,threads") {
		t.Errorf("CSV header = %q", lines[0])
	}
	art := ASCIICurve(c, 60, 12)
	if !strings.Contains(art, "EP") || strings.Count(art, "\n") < 12 {
		t.Errorf("ASCII plot malformed:\n%s", art)
	}
}

func TestPortabilitySmall(t *testing.T) {
	src := x32Harness(t)
	dst, err := NewHarness("x4-2", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := bench.ByName("MD")
	s, err := Portability(src, dst, []bench.Entry{e})
	if err != nil {
		t.Fatal(err)
	}
	if s.Machine != "x4-2" || s.Source != "x3-2" {
		t.Errorf("portability labels wrong: %s / %s", s.Machine, s.Source)
	}
	if s.PerWorkload[0].Metrics.MedianErr > 40 {
		t.Errorf("portability error %.1f%% implausibly large", s.PerWorkload[0].Metrics.MedianErr)
	}
}

func TestAblations(t *testing.T) {
	h := x32Harness(t)
	e, _ := bench.ByName("Swim")
	rows, err := Ablations(h, []bench.Entry{e})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.Full <= 0 {
		t.Fatal("full-model error missing")
	}
	// Iterating matters for this workload: single-pass must be clearly
	// worse than the full model.
	if r.SinglePass <= r.Full {
		t.Errorf("single-pass %.2f%% not worse than full %.2f%%", r.SinglePass, r.Full)
	}
	var buf bytes.Buffer
	if err := RenderAblations(&buf, h.Key, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "single-pass") {
		t.Error("ablation rendering incomplete")
	}
}

func TestPortabilityRescaled(t *testing.T) {
	src := x32Harness(t)
	dst, err := NewHarness("x5-2", 150, 1)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := bench.ByName("MD") // compute-bound: instr demand capped on the small machine
	plain, err := Portability(src, dst, []bench.Entry{e})
	if err != nil {
		t.Fatal(err)
	}
	rescaled, err := PortabilityRescaled(src, dst, []bench.Entry{e})
	if err != nil {
		t.Fatal(err)
	}
	if rescaled.Source != "x3-2+rescaled" {
		t.Errorf("source label = %q", rescaled.Source)
	}
	// Rescaling must not make the low-to-high direction worse for a
	// workload whose demands were capped at the source.
	if rescaled.PerWorkload[0].Metrics.MedianErr > plain.PerWorkload[0].Metrics.MedianErr+1.0 {
		t.Errorf("rescaling hurt: %.2f%% vs %.2f%%",
			rescaled.PerWorkload[0].Metrics.MedianErr, plain.PerWorkload[0].Metrics.MedianErr)
	}
}

func TestPeaksBelowMax(t *testing.T) {
	h := x32Harness(t)
	swim, _ := bench.ByName("Swim") // saturates well below the full machine
	cs, err := h.CurveFor(swim)
	if err != nil {
		t.Fatal(err)
	}
	if !cs.PeaksBelowMax(h.TB.Machine().TotalContexts(), 0.02) {
		t.Error("Swim should peak below the full machine on the X3-2")
	}
	md, _ := bench.ByName("MD") // compute-bound: wants everything
	cm, err := h.CurveFor(md)
	if err != nil {
		t.Fatal(err)
	}
	if cm.PeaksBelowMax(h.TB.Machine().TotalContexts(), 0.02) {
		t.Error("MD should peak at the full machine on the X3-2")
	}
}
