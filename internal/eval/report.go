package eval

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// WriteCurveCSV exports a curve in plot-ready form: one row per placement
// with the shape, thread count, and both normalised performance series
// (Figs. 1, 10, 13).
func WriteCurveCSV(w io.Writer, c *Curve) error {
	meas := Normalize(c.Measured)
	pred := Normalize(c.Predicted)
	if _, err := fmt.Fprintln(w, "placement,threads,shape,measured_time,predicted_time,measured_norm,predicted_norm"); err != nil {
		return err
	}
	for i := range c.Shapes {
		if _, err := fmt.Fprintf(w, "%d,%d,%q,%.6g,%.6g,%.6g,%.6g\n",
			i, c.Shapes[i].Threads(), c.Shapes[i].String(),
			c.Measured[i], c.Predicted[i], meas[i], pred[i]); err != nil {
			return err
		}
	}
	return nil
}

// SaveCurveCSV writes the curve CSV to a file.
func SaveCurveCSV(path string, c *Curve) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("eval: creating %s: %w", path, err)
	}
	defer f.Close()
	if err := WriteCurveCSV(f, c); err != nil {
		return fmt.Errorf("eval: writing %s: %w", path, err)
	}
	return f.Close()
}

// RenderSummary prints the Fig. 11-style error table.
func RenderSummary(w io.Writer, s *Summary) error {
	title := fmt.Sprintf("Errors on %s", s.Machine)
	if s.Source != "" && s.Source != s.Machine {
		title += fmt.Sprintf(" using %s workload descriptions", s.Source)
	}
	if _, err := fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title))); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-12s %8s %8s %8s %8s %9s %6s\n",
		"workload", "mean%", "median%", "offMean%", "offMed%", "bestGap%", "peakN"); err != nil {
		return err
	}
	for _, row := range s.PerWorkload {
		if _, err := fmt.Fprintf(w, "%-12s %8.1f %8.1f %8.1f %8.1f %9.2f %6d\n",
			row.Workload, row.Metrics.MeanErr, row.Metrics.MedianErr,
			row.Metrics.OffsetMean, row.Metrics.OffsetMedian, row.BestGap, row.PeakThreads); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w,
		"overall: median err %.1f%%, median offset err %.1f%%, best-placement gap mean %.2f%% median %.2f%%, %.0f%% of workloads peak below max threads\n",
		s.MedianErr, s.MedianOffsetErr, s.MeanBestGap, s.MedianBestGap, 100*s.FracPeakBelowMax)
	return err
}

// RenderFourSocket prints the Fig. 12 table.
func RenderFourSocket(w io.Writer, machine string, rows []FourSocketRow) error {
	title := fmt.Sprintf("Mean errors on %s by placement class", machine)
	if _, err := fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title))); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-12s %10s %10s %14s\n", "workload", "2-socket%", "20-core%", "whole-machine%"); err != nil {
		return err
	}
	var two, twenty, whole []float64
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%-12s %10.1f %10.1f %14.1f\n", r.Workload, r.TwoSocket, r.TwentyCore, r.Whole); err != nil {
			return err
		}
		two = append(two, r.TwoSocket)
		twenty = append(twenty, r.TwentyCore)
		whole = append(whole, r.Whole)
	}
	_, err := fmt.Fprintf(w, "%-12s %10.1f %10.1f %14.1f\n", "mean", mean(two), mean(twenty), mean(whole))
	return err
}

// RenderTurbo prints the Fig. 14 series.
func RenderTurbo(w io.Writer, t *TurboCurves) error {
	if _, err := fmt.Fprintln(w, "threads,turbo_idle,turbo_background,nominal"); err != nil {
		return err
	}
	for i := range t.TurboIdle {
		if _, err := fmt.Fprintf(w, "%d,%.4g,%.4g,%.4g\n",
			t.TurboIdle[i].Threads, t.TurboIdle[i].PerThreadRate,
			t.TurboBackground[i].PerThreadRate, t.Nominal[i].PerThreadRate); err != nil {
			return err
		}
	}
	return nil
}

// RenderSweep prints the §6.3 sweep comparison.
func RenderSweep(w io.Writer, s *SweepSummary) error {
	title := fmt.Sprintf("Sweep baseline vs Pandia profiling on %s", s.Machine)
	if _, err := fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title))); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-12s %10s %12s %10s %10s %10s\n",
		"workload", "sweep(s)", "profile(s)", "ratio", "foundBest", "gap%"); err != nil {
		return err
	}
	for _, r := range s.Rows {
		if _, err := fmt.Fprintf(w, "%-12s %10.0f %12.0f %10.1f %10v %10.2f\n",
			r.Workload, r.SweepCost, r.ProfileCost, r.CostRatio, r.FoundBest, r.SweepBestGap); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w,
		"mean cost ratio %.1fx; sweep found the exact best placement for %d of %d workloads (%d within 2%%)\n",
		s.MeanCostRatio, s.FoundBestCount, len(s.Rows), s.NearBestCount)
	return err
}

// ASCIICurve renders a coarse text plot of a curve (normalised performance
// against placement index), for terminal inspection of the Figs. 1/10/13
// shapes without a plotting stack.
func ASCIICurve(c *Curve, width, height int) string {
	if width < 10 {
		width = 72
	}
	if height < 4 {
		height = 16
	}
	meas := Normalize(c.Measured)
	pred := Normalize(c.Predicted)
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	plot := func(vals []float64, mark byte) {
		for i, v := range vals {
			col := i * (width - 1) / max(1, len(vals)-1)
			row := int((1 - v) * float64(height-1))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][col] = mark
		}
	}
	plot(meas, '.')
	plot(pred, '+')
	var b strings.Builder
	fmt.Fprintf(&b, "%s on %s  (. measured, + predicted; y: normalised speedup, x: placement)\n",
		c.Workload, c.Machine)
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("|\n")
	}
	b.WriteString("+" + strings.Repeat("-", width) + "+\n")
	return b.String()
}

// EnsureDir creates the directory for experiment outputs.
func EnsureDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("eval: creating %s: %w", dir, err)
	}
	return nil
}

// CurvePath builds the canonical CSV path for a figure curve.
func CurvePath(dir, machine, workloadName string) string {
	return filepath.Join(dir, fmt.Sprintf("curve-%s-%s.csv", machine, workloadName))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
