package eval

import (
	"encoding/json"
	"fmt"
	"os"

	"pandia/internal/obs"
)

// Report is the machine-readable form of a full evaluation run, for
// plotting pipelines and regression tracking across changes to the model or
// the zoo.
type Report struct {
	// Summaries holds the Fig. 11-style error summaries, keyed by
	// "machine" or "machine<-source" for portability runs.
	Summaries map[string]*Summary `json:"summaries,omitempty"`
	// FourSocket is the Fig. 12 table.
	FourSocket []FourSocketRow `json:"fourSocket,omitempty"`
	// Sweeps holds the §6.3 comparisons keyed by machine.
	Sweeps map[string]*SweepSummary `json:"sweeps,omitempty"`
	// Ablations is the DESIGN.md ablation table.
	Ablations []AblationRow `json:"ablations,omitempty"`
	// Turbo is the Fig. 14 study.
	Turbo *TurboCurves `json:"turbo,omitempty"`
	// Noise is the profiling-fault resilience sweep (robustness study).
	Noise *NoiseResult `json:"noise,omitempty"`
	// Convergence is the solver convergence study: iteration-count
	// distributions across the paper's placement sets.
	Convergence *ConvergenceResult `json:"convergence,omitempty"`
	// Metrics is the process-wide observability snapshot taken when the
	// report was written: predictor, scheduler, and fault-measurement
	// counters (e.g. faults.measure.retries / faults.measure.outliers), so
	// quality totals survive into report.json even when no CSV was asked
	// for.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
	// MetricDeltas isolates the counters this evaluation run itself moved:
	// the end-of-run snapshot minus the one taken when the report was
	// allocated (obs.Snapshot.DeltaFrom). In a long-lived process the
	// absolute Metrics mix in earlier traffic; the deltas do not.
	MetricDeltas map[string]int64 `json:"metricDeltas,omitempty"`

	// baseline is the registry snapshot at NewReport time, diffed by
	// FinishMetrics. Not serialised.
	baseline *obs.Snapshot
}

// NewReport allocates an empty report, snapshotting the metric registry so
// FinishMetrics can report the run's own counter deltas.
func NewReport() *Report {
	return &Report{
		Summaries: make(map[string]*Summary),
		Sweeps:    make(map[string]*SweepSummary),
		baseline:  obs.Default().Snapshot(),
	}
}

// FinishMetrics captures the process-wide registry into the report: the
// absolute snapshot in Metrics, and in MetricDeltas the counters moved
// since NewReport. Call it after the last experiment, before Save.
func (r *Report) FinishMetrics() {
	s := obs.Default().Snapshot()
	r.Metrics = s
	r.MetricDeltas = s.DeltaFrom(r.baseline)
}

// AddSummary files an error summary under its machine (and source machine,
// for portability runs).
func (r *Report) AddSummary(s *Summary) {
	key := s.Machine
	if s.Source != "" && s.Source != s.Machine {
		key = fmt.Sprintf("%s<-%s", s.Machine, s.Source)
	}
	r.Summaries[key] = s
}

// Save writes the report as indented JSON.
func (r *Report) Save(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("eval: encoding report: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("eval: writing %s: %w", path, err)
	}
	return nil
}

// LoadReport reads a report back.
func LoadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("eval: reading %s: %w", path, err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("eval: decoding %s: %w", path, err)
	}
	return &r, nil
}
