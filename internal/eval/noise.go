package eval

import (
	"fmt"
	"io"
	"strings"

	"pandia/internal/bench"
	"pandia/internal/faults"
	"pandia/internal/workload"
)

// NoisePenaltyErr is the mean error (%) charged to a pipeline run that
// produces no usable prediction at all — a failed profile or a prediction
// the strict model rejects. It is the cost of having nothing to act on:
// the operator falls back to a blind placement, which on these machines is
// on the order of 100% worse than the best placement in normalised terms.
const NoisePenaltyErr = 100.0

// NoisePoint is the outcome of one fault-rate setting in the resilience
// sweep: the naive single-shot pipeline and the hardened pipeline side by
// side, averaged over workloads and replicates.
type NoisePoint struct {
	// Rate is the base injection rate fed to faults.Uniform.
	Rate float64 `json:"rate"`
	// NaiveMeanErr / RobustMeanErr are the mean prediction errors (%)
	// across workloads and replicates, penalty-charged for failures.
	NaiveMeanErr  float64 `json:"naiveMeanErr"`
	RobustMeanErr float64 `json:"robustMeanErr"`
	// NaiveFailures / RobustFailures count pipeline runs that produced no
	// usable prediction (profile error or strict-model rejection).
	NaiveFailures  int `json:"naiveFailures"`
	RobustFailures int `json:"robustFailures"`
	// Degraded counts robust predictions that were marked Degraded (a
	// repaired input or an Amdahl-only fallback) — usable, but flagged.
	Degraded int `json:"degradedPredictions"`
	// NaiveCost / RobustCost are the total virtual machine-seconds the
	// profiling runs consumed, including retry and backoff accounting.
	NaiveCost  float64 `json:"naiveCost"`
	RobustCost float64 `json:"robustCost"`
	// NaiveQuality / RobustQuality roll each pipeline's per-profile
	// measurement quality reports (attempts, failures, invalid samples,
	// outlier rejections) up over every successful profile at this rate.
	// Profiles that failed outright contribute only to the registry's
	// process-wide faults.measure.* counters, not to these rollups.
	NaiveQuality  faults.Report `json:"naiveQuality"`
	RobustQuality faults.Report `json:"robustQuality"`
}

// NoiseResult is the full resilience sweep on one machine.
type NoiseResult struct {
	Machine string `json:"machine"`
	Seed    int64  `json:"seed"`
	// Replicates is how many independently-seeded profiling runs each
	// (rate, workload) cell averages over.
	Replicates int `json:"replicates"`
	// BaselineErr is the fault-free single-shot mean error (%): the floor
	// both pipelines are measured against.
	BaselineErr float64 `json:"baselineErr"`
	// Policy is the retry/aggregation policy the robust pipeline used.
	Policy faults.Policy `json:"policy"`
	Points []NoisePoint  `json:"points"`
}

// DefaultNoiseRates is the fault-rate ladder the noise experiment sweeps.
func DefaultNoiseRates() []float64 { return []float64{0, 0.02, 0.05, 0.1, 0.2} }

// NoiseResilience sweeps fault-injection rates on the harness's machine,
// comparing the naive single-shot profiling pipeline against the hardened
// one (median-of-k profiling plus degraded-mode prediction). Ground-truth
// placement times come from the fault-free testbed; only the profiling
// runs pass through the injector, mirroring a deployment where production
// measurements are trustworthy but the profiling hosts are noisy.
//
// For each rate, each workload is profiled `replicates` times with
// distinct seeds by both pipelines against the same fault process. A
// pipeline run that yields no usable prediction is charged NoisePenaltyErr.
// Everything is deterministic in (seed, rates, entries, replicates, pol).
func NoiseResilience(h *Harness, entries []bench.Entry, rates []float64, pol faults.Policy, replicates int, seed int64) (*NoiseResult, error) {
	if len(entries) == 0 || len(rates) == 0 {
		return nil, fmt.Errorf("eval: noise resilience needs workloads and rates")
	}
	if replicates < 1 {
		replicates = 1
	}
	if !pol.Robust() {
		pol = faults.RobustDefaults()
	}

	// Fault-free baseline: the error the single-shot pipeline achieves when
	// nothing goes wrong.
	var baseline float64
	for _, e := range entries {
		meas, err := h.MeasureAll(e)
		if err != nil {
			return nil, err
		}
		prof, err := h.Profile(e)
		if err != nil {
			return nil, err
		}
		pred, err := h.PredictAll(&prof.Workload)
		if err != nil {
			return nil, err
		}
		baseline += ComputeMetrics(meas, pred).MeanErr
	}
	baseline /= float64(len(entries))

	out := &NoiseResult{
		Machine: h.Key, Seed: seed, Replicates: replicates,
		BaselineErr: baseline, Policy: pol,
	}
	for ri, rate := range rates {
		inj, err := faults.New(h.TB, faults.Uniform(rate, seed+int64(ri)*1_000_003))
		if err != nil {
			return nil, err
		}
		pt := NoisePoint{Rate: rate}
		cells := 0
		for _, e := range entries {
			meas, err := h.MeasureAll(e)
			if err != nil {
				return nil, err
			}
			for r := 0; r < replicates; r++ {
				// Both pipelines start from the same seed, hence face the
				// same fault draws on their shared attempts; the robust one
				// additionally pays for retries and repeats.
				profSeed := faults.AttemptSeed(seed, ri*replicates+r+1)
				cells++

				naive := &workload.Profiler{TB: inj, MD: h.MD, Seed: profSeed}
				if prof, err := naive.Profile(e.Truth); err != nil {
					pt.NaiveFailures++
					pt.NaiveMeanErr += NoisePenaltyErr
				} else {
					pt.NaiveCost += prof.Cost
					pt.NaiveQuality.Merge(prof.Quality)
					if pred, err := h.PredictAll(&prof.Workload); err != nil {
						pt.NaiveFailures++
						pt.NaiveMeanErr += NoisePenaltyErr
					} else {
						pt.NaiveMeanErr += ComputeMetrics(meas, pred).MeanErr
					}
				}

				robust := &workload.Profiler{TB: inj, MD: h.MD, Seed: profSeed, Policy: pol}
				if prof, err := robust.Profile(e.Truth); err != nil {
					pt.RobustFailures++
					pt.RobustMeanErr += NoisePenaltyErr
				} else {
					pt.RobustCost += prof.Cost
					pt.RobustQuality.Merge(prof.Quality)
					if pred, degraded, err := h.PredictAllDegraded(&prof.Workload); err != nil {
						pt.RobustFailures++
						pt.RobustMeanErr += NoisePenaltyErr
					} else {
						pt.RobustMeanErr += ComputeMetrics(meas, pred).MeanErr
						pt.Degraded += degraded
					}
				}
			}
		}
		pt.NaiveMeanErr /= float64(cells)
		pt.RobustMeanErr /= float64(cells)
		out.Points = append(out.Points, pt)
	}
	return out, nil
}

// RenderNoise prints the resilience sweep as a text table.
func RenderNoise(w io.Writer, n *NoiseResult) error {
	title := fmt.Sprintf("Profiling-fault resilience on %s (baseline %.1f%%, %d replicates, repeats=%d retries=%d)",
		n.Machine, n.BaselineErr, n.Replicates, n.Policy.Repeats, n.Policy.MaxRetries)
	if _, err := fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title))); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%6s %12s %12s %9s %9s %9s %9s %9s %11s %11s\n",
		"rate", "naiveErr%", "robustErr%", "naiveFail", "robFail", "degraded", "robRetry", "robOutlr", "naiveCost", "robCost"); err != nil {
		return err
	}
	for _, p := range n.Points {
		if _, err := fmt.Fprintf(w, "%6.2f %12.2f %12.2f %9d %9d %9d %9d %9d %11.0f %11.0f\n",
			p.Rate, p.NaiveMeanErr, p.RobustMeanErr,
			p.NaiveFailures, p.RobustFailures, p.Degraded,
			p.RobustQuality.Failures+p.RobustQuality.Invalid, p.RobustQuality.Outliers,
			p.NaiveCost, p.RobustCost); err != nil {
			return err
		}
	}
	return nil
}

// WriteNoiseCSV writes the sweep in CSV form for plotting.
func WriteNoiseCSV(w io.Writer, n *NoiseResult) error {
	if _, err := fmt.Fprintf(w, "rate,naiveMeanErr,robustMeanErr,naiveFailures,robustFailures,degraded,robustAttempts,robustRunFailures,robustInvalid,robustOutliers,naiveCost,robustCost,baselineErr\n"); err != nil {
		return err
	}
	for _, p := range n.Points {
		if _, err := fmt.Fprintf(w, "%g,%g,%g,%d,%d,%d,%d,%d,%d,%d,%g,%g,%g\n",
			p.Rate, p.NaiveMeanErr, p.RobustMeanErr,
			p.NaiveFailures, p.RobustFailures, p.Degraded,
			p.RobustQuality.Attempts, p.RobustQuality.Failures,
			p.RobustQuality.Invalid, p.RobustQuality.Outliers,
			p.NaiveCost, p.RobustCost, n.BaselineErr); err != nil {
			return err
		}
	}
	return nil
}
