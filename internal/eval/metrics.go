package eval

import (
	"fmt"
	"math"
	"sort"
)

// Metrics quantifies the prediction quality of one curve with the paper's
// two measures (§6.1): the absolute difference between predicted and
// measured normalised performance as a percentage of the measured value,
// and the "offset error" where the mean difference is removed first, which
// measures trend accuracy.
type Metrics struct {
	MeanErr      float64
	MedianErr    float64
	OffsetMean   float64
	OffsetMedian float64
}

// String renders the metrics compactly.
func (m Metrics) String() string {
	return fmt.Sprintf("mean=%.1f%% median=%.1f%% offsetMean=%.1f%% offsetMedian=%.1f%%",
		m.MeanErr, m.MedianErr, m.OffsetMean, m.OffsetMedian)
}

// Normalize converts execution times into the paper's normalised speedup:
// best (smallest) time over each time, so the best placement scores 1.
func Normalize(times []float64) []float64 {
	best := math.Inf(1)
	for _, t := range times {
		if t < best {
			best = t
		}
	}
	out := make([]float64, len(times))
	for i, t := range times {
		out[i] = best / t
	}
	return out
}

// ComputeMetrics evaluates the error metrics for one curve of measured and
// predicted times (aligned slices).
func ComputeMetrics(measured, predicted []float64) Metrics {
	if len(measured) != len(predicted) || len(measured) == 0 {
		return Metrics{}
	}
	meas := Normalize(measured)
	pred := Normalize(predicted)

	errs := make([]float64, len(meas))
	var offset float64
	for i := range meas {
		errs[i] = 100 * math.Abs(pred[i]-meas[i]) / meas[i]
		offset += meas[i] - pred[i]
	}
	offset /= float64(len(meas))

	offErrs := make([]float64, len(meas))
	for i := range meas {
		offErrs[i] = 100 * math.Abs(pred[i]+offset-meas[i]) / meas[i]
	}
	return Metrics{
		MeanErr:      mean(errs),
		MedianErr:    median(errs),
		OffsetMean:   mean(offErrs),
		OffsetMedian: median(offErrs),
	}
}

// Metrics computes the curve's error metrics.
func (c *Curve) Metrics() Metrics { return ComputeMetrics(c.Measured, c.Predicted) }

// BestGap returns the §6.1 headline number for this curve: how much slower
// the placement Pandia predicts to be fastest actually is, as a percentage
// of the truly fastest measured placement.
func (c *Curve) BestGap() float64 {
	bestMeas, measAtBestPred := math.Inf(1), math.Inf(1)
	bestPred := math.Inf(1)
	for i := range c.Measured {
		if c.Measured[i] < bestMeas {
			bestMeas = c.Measured[i]
		}
		if c.Predicted[i] < bestPred {
			bestPred = c.Predicted[i]
			measAtBestPred = c.Measured[i]
		}
	}
	if !(bestMeas > 0) {
		return 0
	}
	return 100 * (measAtBestPred - bestMeas) / bestMeas
}

// PeakThreads returns the thread count of the fastest measured placement
// (§6.1: on larger machines the peak is less likely to use every thread).
func (c *Curve) PeakThreads() int {
	best, threads := math.Inf(1), 0
	for i := range c.Measured {
		if c.Measured[i] < best {
			best = c.Measured[i]
			threads = c.Shapes[i].Threads()
		}
	}
	return threads
}

// PeaksBelowMax reports whether the workload genuinely peaks below the full
// machine: the fastest measured placement beats the fastest full-machine
// placement by more than the threshold fraction (filtering out noise ties
// on flat plateaus). maxThreads is the machine's context count.
func (c *Curve) PeaksBelowMax(maxThreads int, threshold float64) bool {
	bestAll, bestFull := math.Inf(1), math.Inf(1)
	for i := range c.Measured {
		if c.Measured[i] < bestAll {
			bestAll = c.Measured[i]
		}
		if c.Shapes[i].Threads() == maxThreads && c.Measured[i] < bestFull {
			bestFull = c.Measured[i]
		}
	}
	if math.IsInf(bestFull, 1) {
		return true // no full-machine placement in the evaluated set
	}
	return bestFull > bestAll*(1+threshold)
}

// BestMeasuredIndex returns the index of the fastest measured placement.
func (c *Curve) BestMeasuredIndex() int {
	best, idx := math.Inf(1), 0
	for i, t := range c.Measured {
		if t < best {
			best, idx = t, i
		}
	}
	return idx
}

// BestPredictedIndex returns the index of the fastest predicted placement.
func (c *Curve) BestPredictedIndex() int {
	best, idx := math.Inf(1), 0
	for i, t := range c.Predicted {
		if t < best {
			best, idx = t, i
		}
	}
	return idx
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}
