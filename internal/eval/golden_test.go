package eval

import (
	"path/filepath"
	"testing"

	"pandia/internal/bench"
)

// TestGoldenReproductionShapes is the regression guard for the whole
// reproduction: it runs the full zoo on the exhaustive X3-2 harness and
// asserts the paper-shaped headline properties that EXPERIMENTS.md records.
// If a change to the model, the profiler, the testbed physics, or the zoo
// breaks one of the paper's qualitative results, this test names it.
func TestGoldenReproductionShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-zoo evaluation; skipped with -short")
	}
	h := x32Harness(t)
	zoo := bench.Zoo()
	s, err := ErrorSummary(h, zoo)
	if err != nil {
		t.Fatal(err)
	}

	// Paper X3-2: median error 3.8%, offset 1.5% (Fig. 11b). Allow head
	// room but keep the single-digit regime.
	if s.MedianErr > 8 {
		t.Errorf("median error %.1f%% left the paper's single-digit regime", s.MedianErr)
	}
	if s.MedianOffsetErr > s.MedianErr {
		t.Errorf("offset error %.1f%% above raw error %.1f%%; trend accuracy regressed",
			s.MedianOffsetErr, s.MedianErr)
	}
	// §6.1: the placement Pandia picks is within a few percent of the best.
	if s.MeanBestGap > 6 {
		t.Errorf("mean best-placement gap %.1f%%, want a few percent", s.MeanBestGap)
	}
	// Development-set workloads must not be outliers: the paper's split
	// exists to show the techniques generalise; both halves should land in
	// the same error regime.
	var devMax float64
	for i, e := range zoo {
		if e.Development && s.PerWorkload[i].Metrics.MedianErr > devMax {
			devMax = s.PerWorkload[i].Metrics.MedianErr
		}
	}
	if devMax > 12 {
		t.Errorf("development workload error %.1f%% out of regime", devMax)
	}

	// equake (§6.3): mild on the small machine, clear on the large one.
	eq := bench.Equake()
	small, err := h.CurveFor(eq)
	if err != nil {
		t.Fatal(err)
	}
	large, err := NewHarness("x5-2", 400, 1)
	if err != nil {
		t.Fatal(err)
	}
	largeCurve, err := large.CurveFor(eq)
	if err != nil {
		t.Fatal(err)
	}
	smallErr := small.Metrics().MedianErr
	largeErr := largeCurve.Metrics().MedianErr
	if largeErr < 1.5*smallErr {
		t.Errorf("equake error on X5-2 (%.1f%%) not clearly above X3-2 (%.1f%%)", largeErr, smallErr)
	}

	// §6.3 sweep: several times costlier than six profiling runs.
	sw, err := SweepStudy(h, zoo[:6])
	if err != nil {
		t.Fatal(err)
	}
	if sw.MeanCostRatio < 2 {
		t.Errorf("sweep cost ratio %.1fx, want well above 1 (paper: 4.0x)", sw.MeanCostRatio)
	}
}

func TestReportRoundTrip(t *testing.T) {
	h := x32Harness(t)
	e, _ := bench.ByName("EP")
	s, err := ErrorSummary(h, []bench.Entry{e})
	if err != nil {
		t.Fatal(err)
	}
	r := NewReport()
	r.AddSummary(s)
	sw, err := SweepStudy(h, []bench.Entry{e})
	if err != nil {
		t.Fatal(err)
	}
	r.Sweeps[h.Key] = sw

	path := filepath.Join(t.TempDir(), "report.json")
	if err := r.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := back.Summaries["x3-2"]
	if !ok {
		t.Fatalf("summary lost in round trip: %v", back.Summaries)
	}
	if got.MedianErr != s.MedianErr {
		t.Errorf("median error %g != %g after round trip", got.MedianErr, s.MedianErr)
	}
	if back.Sweeps["x3-2"].MeanCostRatio != sw.MeanCostRatio {
		t.Error("sweep lost in round trip")
	}
	if _, err := LoadReport(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Error("missing report accepted")
	}
}

func TestReportPortabilityKey(t *testing.T) {
	r := NewReport()
	r.AddSummary(&Summary{Machine: "x5-2", Source: "x3-2"})
	if _, ok := r.Summaries["x5-2<-x3-2"]; !ok {
		t.Errorf("portability key missing: %v", r.Summaries)
	}
}
