// Package eval reproduces the paper's evaluation (§6): measured-versus-
// predicted placement curves for every workload (Figs. 1, 10, 13), error
// summaries (Figs. 11-12), the Turbo Boost study (Fig. 14), and the
// best-placement and sweep-baseline tables of §6.1 and §6.3.
package eval

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"pandia/internal/bench"
	"pandia/internal/core"
	"pandia/internal/machine"
	"pandia/internal/placement"
	"pandia/internal/simhw"
	"pandia/internal/workload"
)

// Harness binds one simulated machine to everything the experiments need:
// its measured description, the canonical placement set under evaluation,
// and caches of profiles and measured run times. It is safe for concurrent
// use.
type Harness struct {
	// Key is the machine's model code ("x5-2", ...).
	Key string
	// TB is the simulated machine.
	TB *simhw.Testbed
	// MD is its measured description.
	MD *machine.Description
	// Shapes is the evaluation placement set: the canonical space, sampled
	// down on large machines, always including the sweep placements so the
	// §6.3 comparison is meaningful.
	Shapes []placement.Shape
	// Seed drives sampling and measurement noise.
	Seed int64

	// places holds each shape's expanded placement, aligned with Shapes.
	// Expanding once here keeps MeasureAll, PredictAll, PredictAllDegraded,
	// and the ablation loops from re-deriving the same placements per sweep.
	places []placement.Placement

	// cache memoizes fast-path predictions across sweeps (DESIGN.md §12).
	// Hits are bit-identical to cold solves, so every experiment's numbers
	// are unchanged; repeated sweeps of the same description (throughput
	// rounds, Fig10 re-evaluation) skip the solver.
	cache *core.PredictionCache

	mu sync.Mutex
	//pandia:guardedby(mu)
	profiles map[string]*workload.Profile
	//pandia:guardedby(mu)
	measured map[string][]float64 // workload name -> times aligned with Shapes
}

// DefaultMaxPlacements mirrors the paper's coverage: exhaustive on the
// small machines, ~20% samples (a few thousand placements) on the large
// ones (§6.1-6.2).
func DefaultMaxPlacements(key string) int {
	switch key {
	case "x5-2", "x2-4":
		return 3000
	default:
		return 0 // exhaustive
	}
}

// NewHarness builds the harness for one of the preset machines.
func NewHarness(key string, maxPlacements int, seed int64) (*Harness, error) {
	truths := simhw.Truths()
	mt, ok := truths[key]
	if !ok {
		return nil, fmt.Errorf("eval: unknown machine %q", key)
	}
	tb, err := simhw.NewTestbed(mt)
	if err != nil {
		return nil, err
	}
	md, err := machine.Describe(tb)
	if err != nil {
		return nil, err
	}
	topo := tb.Machine()
	shapes := placement.Enumerate(topo)
	if maxPlacements > 0 {
		shapes = placement.Sample(shapes, maxPlacements, seed)
	}
	// Keep the sweep placements in the evaluation set.
	have := make(map[string]bool, len(shapes))
	for _, s := range shapes {
		have[s.Key()] = true
	}
	for _, s := range placement.SweepShapes(topo) {
		if !have[s.Key()] {
			shapes = append(shapes, s)
			have[s.Key()] = true
		}
	}
	placement.SortShapes(shapes)
	places := make([]placement.Placement, len(shapes))
	for i, s := range shapes {
		places[i] = s.Expand(topo)
	}
	return &Harness{
		Key: key, TB: tb, MD: md, Shapes: shapes, Seed: seed,
		places:   places,
		cache:    core.NewPredictionCache(0),
		profiles: make(map[string]*workload.Profile),
		measured: make(map[string][]float64),
	}, nil
}

// Cache returns the harness's shared prediction cache (for stats reporting
// and cache-sensitive experiments).
func (h *Harness) Cache() *core.PredictionCache { return h.cache }

// Placements returns the expanded placement of every evaluation shape,
// aligned with Shapes. The slice and the placements it holds are shared and
// must not be modified.
func (h *Harness) Placements() []placement.Placement { return h.places }

// cachedProfile fetches a cached profile under the lock.
func (h *Harness) cachedProfile(name string) (*workload.Profile, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	p, ok := h.profiles[name]
	return p, ok
}

func (h *Harness) storeProfile(name string, p *workload.Profile) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.profiles[name] = p
}

// Profile returns the workload's six-run profile, cached per workload.
func (h *Harness) Profile(e bench.Entry) (*workload.Profile, error) {
	if p, ok := h.cachedProfile(e.Name); ok {
		return p, nil
	}
	prof, err := (&workload.Profiler{TB: h.TB, MD: h.MD, Seed: h.Seed}).Profile(e.Truth)
	if err != nil {
		return nil, err
	}
	h.storeProfile(e.Name, prof)
	return prof, nil
}

// MeasureAll runs the workload on every evaluation shape, returning times
// aligned with h.Shapes. Results are cached per workload.
func (h *Harness) MeasureAll(e bench.Entry) ([]float64, error) {
	if m, ok := h.cachedMeasurement(e.Name); ok {
		return m, nil
	}

	times := make([]float64, len(h.Shapes))
	err := parallelEach(len(h.Shapes), func(i int) error {
		res, err := h.TB.Run(simhw.RunConfig{
			Workload:  e.Truth,
			Placement: h.places[i],
			Power:     simhw.PowerFilled,
			Seed:      h.Seed,
		})
		if err != nil {
			return fmt.Errorf("eval: measuring %s on %v: %w", e.Name, h.Shapes[i], err)
		}
		times[i] = res.Time
		return nil
	})
	if err != nil {
		return nil, err
	}
	h.storeMeasurement(e.Name, times)
	return times, nil
}

// cachedMeasurement fetches cached shape timings under the lock.
func (h *Harness) cachedMeasurement(name string) ([]float64, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	m, ok := h.measured[name]
	return m, ok
}

func (h *Harness) storeMeasurement(name string, times []float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.measured[name] = times
}

// PredictAll predicts the workload on every evaluation shape using the
// given description (possibly from another machine, for the portability
// experiments), returning times aligned with h.Shapes. The sweep runs on
// the fast prediction path with per-worker pooled predictors.
func (h *Harness) PredictAll(w *core.Workload) ([]float64, error) {
	preds, err := core.PredictSweep(h.MD, w, h.places, core.Options{Cache: h.cache})
	if err != nil {
		return nil, fmt.Errorf("eval: predicting %s on %s: %w", w.Name, h.Key, err)
	}
	times := make([]float64, len(preds))
	for i, p := range preds {
		times[i] = p.Time
	}
	return times, nil
}

// PredictAllDegraded is PredictAll with core degraded mode enabled: defects
// in the description are repaired pessimistically and non-convergence falls
// back to the Amdahl-only model instead of failing the whole sweep. It
// additionally returns how many of the predictions were degraded.
func (h *Harness) PredictAllDegraded(w *core.Workload) ([]float64, int, error) {
	preds, err := core.PredictSweep(h.MD, w, h.places, core.Options{AllowDegraded: true, Cache: h.cache})
	if err != nil {
		return nil, 0, fmt.Errorf("eval: degraded prediction of %s on %s: %w", w.Name, h.Key, err)
	}
	times := make([]float64, len(preds))
	degraded := 0
	for i, p := range preds {
		times[i] = p.Time
		if p.Degraded {
			degraded++
		}
	}
	return times, degraded, nil
}

// Curve is one workload's measured-versus-predicted placement curve
// (Figs. 1 and 10): times aligned with the harness's shape set.
type Curve struct {
	Machine   string
	Workload  string
	Shapes    []placement.Shape
	Measured  []float64
	Predicted []float64
	// ProfileCost is the machine time the six profiling runs took.
	ProfileCost float64
	// Description is the profiled workload model used for the predictions.
	Description core.Workload
}

// CurveFor profiles the workload on this machine and evaluates the full
// placement curve.
func (h *Harness) CurveFor(e bench.Entry) (*Curve, error) {
	prof, err := h.Profile(e)
	if err != nil {
		return nil, err
	}
	return h.CurveWith(e, &prof.Workload, prof.Cost)
}

// CurveWith evaluates the placement curve using an externally supplied
// workload description (the portability experiments of Fig. 11c-d).
func (h *Harness) CurveWith(e bench.Entry, w *core.Workload, profileCost float64) (*Curve, error) {
	meas, err := h.MeasureAll(e)
	if err != nil {
		return nil, err
	}
	pred, err := h.PredictAll(w)
	if err != nil {
		return nil, err
	}
	return &Curve{
		Machine:     h.Key,
		Workload:    e.Name,
		Shapes:      h.Shapes,
		Measured:    meas,
		Predicted:   pred,
		ProfileCost: profileCost,
		Description: *w,
	}, nil
}

// parallelEach runs fn(i) for i in [0,n) across the available CPUs and
// returns the first error.
func parallelEach(n int, fn func(i int) error) error {
	return parallelEachN(n, runtime.GOMAXPROCS(0), fn)
}

// parallelChunk is how many consecutive indices a worker claims per atomic
// increment: large enough to amortise the counter traffic, small enough to
// balance uneven per-item costs.
const parallelChunk = 8

// parallelEachN is parallelEach with an explicit worker count, so tests can
// force parallel execution regardless of GOMAXPROCS. Workers claim chunks of
// the index space from an atomic counter — no per-item channel sends, and no
// blocked senders to leak when a worker bails out early on error. An error
// stops every worker at its next chunk boundary; the first one reported wins.
func parallelEachN(n, workers int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
		next  atomic.Int64
		stop  atomic.Bool
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for !stop.Load() {
				lo := int(next.Add(parallelChunk)) - parallelChunk
				if lo >= n {
					return
				}
				hi := lo + parallelChunk
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					if err := fn(i); err != nil {
						stop.Store(true)
						mu.Lock()
						if first == nil {
							first = err
						}
						mu.Unlock()
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	return first
}
