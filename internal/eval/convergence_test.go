package eval

import (
	"strings"
	"testing"

	"pandia/internal/faults"
)

func TestConvergenceStudy(t *testing.T) {
	h := x32Harness(t)
	entries := noiseEntries(t)
	c, err := ConvergenceStudy(h, entries)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Rows) != len(entries) {
		t.Fatalf("rows = %d, want %d", len(c.Rows), len(entries))
	}
	var total int64
	for _, r := range c.Rows {
		if r.Placements != len(h.Placements()) {
			t.Errorf("%s: %d placements, want %d", r.Workload, r.Placements, len(h.Placements()))
		}
		if r.MeanIterations < 1 || r.MaxIterations < 1 {
			t.Errorf("%s: degenerate iteration stats %+v", r.Workload, r)
		}
		if r.Unconverged != 0 {
			t.Errorf("%s: %d unconverged strict predictions", r.Workload, r.Unconverged)
		}
		var bucketSum int64
		for _, n := range r.Histogram.Counts {
			bucketSum += n
		}
		if bucketSum != r.Histogram.Count {
			t.Errorf("%s: buckets sum to %d, count is %d", r.Workload, bucketSum, r.Histogram.Count)
		}
		total += r.Histogram.Count
	}
	if c.Overall.Count != total {
		t.Errorf("overall count %d, rows sum to %d", c.Overall.Count, total)
	}

	var table, csv strings.Builder
	if err := RenderConvergence(&table, c); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table.String(), "MD") || !strings.Contains(table.String(), "(all)") {
		t.Errorf("table missing content:\n%s", table.String())
	}
	if err := WriteConvergenceCSV(&csv, c); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != len(entries)+1 || !strings.HasPrefix(lines[0], "workload,") {
		t.Errorf("csv shape wrong:\n%s", csv.String())
	}
}

// TestNoiseQualityRollups checks that the resilience sweep surfaces the
// measurement-quality totals: the robust pipeline's rollup must account for
// at least Repeats attempts per profiling step, and under injected faults
// it must show retry pressure (more attempts than the naive pipeline made
// runs).
func TestNoiseQualityRollups(t *testing.T) {
	h := x32Harness(t)
	n, err := NoiseResilience(h, noiseEntries(t)[:1], []float64{0.1}, faults.RobustDefaults(), 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	p := n.Points[0]
	if p.RobustQuality.Attempts == 0 || p.RobustQuality.Used == 0 {
		t.Fatalf("robust quality rollup empty: %+v", p.RobustQuality)
	}
	if p.RobustQuality.Attempts <= p.NaiveQuality.Attempts {
		t.Errorf("robust attempts %d not above naive %d",
			p.RobustQuality.Attempts, p.NaiveQuality.Attempts)
	}
	if p.RobustQuality.Failures+p.RobustQuality.Invalid == 0 {
		t.Errorf("no retry pressure recorded at 10%% fault rate: %+v", p.RobustQuality)
	}
}
