package eval

import (
	"strings"
	"testing"

	"pandia/internal/bench"
	"pandia/internal/faults"
)

func noiseEntries(t *testing.T) []bench.Entry {
	t.Helper()
	var out []bench.Entry
	for _, name := range []string{"MD", "CG"} {
		e, err := bench.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, e)
	}
	return out
}

// TestNoiseResilienceAcceptance is the robustness acceptance criterion: at
// 5% counter-dropout + outlier injection the hardened pipeline's mean
// prediction error stays within 2x of the fault-free baseline, while the
// naive single-shot pipeline degrades strictly worse.
func TestNoiseResilienceAcceptance(t *testing.T) {
	h := x32Harness(t)
	n, err := NoiseResilience(h, noiseEntries(t), []float64{0.05, 0.1}, faults.RobustDefaults(), 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	if n.BaselineErr <= 0 {
		t.Fatalf("degenerate fault-free baseline %g", n.BaselineErr)
	}
	for _, p := range n.Points {
		t.Logf("rate %.2f: naive %.2f%% (%d fail) robust %.2f%% (%d fail, %d degraded) baseline %.2f%%",
			p.Rate, p.NaiveMeanErr, p.NaiveFailures, p.RobustMeanErr, p.RobustFailures, p.Degraded, n.BaselineErr)
		if p.RobustMeanErr > 2*n.BaselineErr {
			t.Errorf("rate %.2f: robust error %.2f%% exceeds 2x baseline %.2f%%",
				p.Rate, p.RobustMeanErr, n.BaselineErr)
		}
		if p.NaiveMeanErr <= p.RobustMeanErr {
			t.Errorf("rate %.2f: naive error %.2f%% not strictly worse than robust %.2f%%",
				p.Rate, p.NaiveMeanErr, p.RobustMeanErr)
		}
		// The robust pipeline pays for its resilience in machine time.
		if p.RobustCost <= p.NaiveCost {
			t.Errorf("rate %.2f: robust cost %g not above naive cost %g",
				p.Rate, p.RobustCost, p.NaiveCost)
		}
	}
}

// TestNoiseResilienceZeroRate checks the sweep's control point: with no
// faults injected both pipelines match the fault-free baseline exactly and
// nothing fails or degrades.
func TestNoiseResilienceZeroRate(t *testing.T) {
	h := x32Harness(t)
	n, err := NoiseResilience(h, noiseEntries(t), []float64{0}, faults.RobustDefaults(), 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	p := n.Points[0]
	if p.NaiveFailures != 0 || p.RobustFailures != 0 || p.Degraded != 0 {
		t.Errorf("fault-free point reports failures: %+v", p)
	}
	// The profiling seeds differ from the baseline's, so errors need not be
	// identical — but without faults both pipelines must sit near it.
	if p.NaiveMeanErr > 2*n.BaselineErr || p.RobustMeanErr > 2*n.BaselineErr {
		t.Errorf("fault-free errors far from baseline %.2f%%: %+v", n.BaselineErr, p)
	}
}

// TestNoiseResilienceDeterministic pins that the sweep is a pure function
// of its inputs.
func TestNoiseResilienceDeterministic(t *testing.T) {
	h := x32Harness(t)
	entries := noiseEntries(t)[:1]
	a, err := NoiseResilience(h, entries, []float64{0.1}, faults.RobustDefaults(), 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NoiseResilience(h, entries, []float64{0.1}, faults.RobustDefaults(), 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Points[0] != b.Points[0] {
		t.Errorf("sweep not deterministic:\n a %+v\n b %+v", a.Points[0], b.Points[0])
	}
}

func TestNoiseRenderAndCSV(t *testing.T) {
	n := &NoiseResult{
		Machine: "x3-2", BaselineErr: 3.2, Replicates: 2, Policy: faults.RobustDefaults(),
		Points: []NoisePoint{{Rate: 0.05, NaiveMeanErr: 21.5, RobustMeanErr: 4.1, NaiveFailures: 3, Degraded: 2, NaiveCost: 100, RobustCost: 700}},
	}
	var table, csv strings.Builder
	if err := RenderNoise(&table, n); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table.String(), "0.05") || !strings.Contains(table.String(), "x3-2") {
		t.Errorf("table missing content:\n%s", table.String())
	}
	if err := WriteNoiseCSV(&csv, n); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "rate,") {
		t.Errorf("csv shape wrong:\n%s", csv.String())
	}
}
