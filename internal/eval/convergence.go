package eval

import (
	"fmt"
	"io"
	"strings"

	"pandia/internal/bench"
	"pandia/internal/core"
	"pandia/internal/obs"
)

// ConvergenceRow is one workload's solver-convergence profile over the
// harness's placement set: how many refinement iterations the fixed-point
// solver needed, as a bucketed distribution.
type ConvergenceRow struct {
	Workload string `json:"workload"`
	// Placements is the number of placements predicted (the histogram's
	// observation count).
	Placements int `json:"placements"`
	// MeanIterations / MaxIterations summarise the distribution.
	MeanIterations float64 `json:"meanIterations"`
	MaxIterations  int     `json:"maxIterations"`
	// Unconverged counts predictions that hit the iteration cap without
	// meeting the tolerance (possible only under degraded mode; the strict
	// solver fails instead).
	Unconverged int `json:"unconverged"`
	// Histogram is the iteration-count distribution on the standard
	// obs.IterationBuckets ladder.
	Histogram obs.HistogramValue `json:"histogram"`
}

// ConvergenceResult is the solver convergence study on one machine: per-
// workload iteration histograms across the Fig. 10 placement sets, plus the
// pooled distribution.
type ConvergenceResult struct {
	Machine string           `json:"machine"`
	Rows    []ConvergenceRow `json:"rows"`
	// Overall pools every workload's observations.
	Overall obs.HistogramValue `json:"overall"`
}

// ConvergenceStudy profiles each workload and predicts it on every
// evaluation placement with full (slow-path) predictions, histogramming the
// solver's iterations-to-convergence. It answers the operational question
// behind the paper's "a few iterations suffice" claim (§5): how the
// fixed-point iteration count is distributed across real placement sets,
// and whether any workload strains the cap.
func ConvergenceStudy(h *Harness, entries []bench.Entry) (*ConvergenceResult, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("eval: convergence study needs workloads")
	}
	// A local registry keeps the study's histograms off the process-wide
	// metric namespace and makes the snapshot self-contained.
	reg := obs.NewRegistry()
	overall := reg.Histogram("overall", obs.IterationBuckets())
	out := &ConvergenceResult{Machine: h.Key}
	for _, e := range entries {
		prof, err := h.Profile(e)
		if err != nil {
			return nil, err
		}
		p, err := core.NewPredictor(h.MD, &prof.Workload, core.Options{})
		if err != nil {
			return nil, err
		}
		hist := reg.Histogram(e.Name, obs.IterationBuckets())
		row := ConvergenceRow{Workload: e.Name}
		for _, place := range h.Placements() {
			pred, err := p.Predict(place)
			if err != nil {
				return nil, fmt.Errorf("eval: convergence of %s on %s: %w", e.Name, h.Key, err)
			}
			hist.Observe(float64(pred.Iterations))
			overall.Observe(float64(pred.Iterations))
			if pred.Iterations > row.MaxIterations {
				row.MaxIterations = pred.Iterations
			}
			if !pred.Converged {
				row.Unconverged++
			}
		}
		out.Rows = append(out.Rows, row)
	}
	snap := reg.Snapshot()
	for i := range out.Rows {
		hv := snap.Histogram(out.Rows[i].Workload)
		out.Rows[i].Histogram = *hv
		out.Rows[i].Placements = int(hv.Count)
		out.Rows[i].MeanIterations = hv.Mean()
	}
	out.Overall = *snap.Histogram("overall")
	return out, nil
}

// RenderConvergence prints the study as a text table, one bucket column per
// bound of the iteration ladder.
func RenderConvergence(w io.Writer, c *ConvergenceResult) error {
	title := fmt.Sprintf("Solver convergence on %s (%d workloads, %d predictions)",
		c.Machine, len(c.Rows), c.Overall.Count)
	if _, err := fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title))); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-12s %7s %6s %5s %7s |", "workload", "places", "mean", "max", "unconv"); err != nil {
		return err
	}
	for _, b := range c.Overall.Bounds {
		if _, err := fmt.Fprintf(w, " %5s", fmt.Sprintf("<=%g", b)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, " %5s\n", "over"); err != nil {
		return err
	}
	rows := append([]ConvergenceRow(nil), c.Rows...)
	rows = append(rows, ConvergenceRow{
		Workload:       "(all)",
		Placements:     int(c.Overall.Count),
		MeanIterations: c.Overall.Mean(),
		Histogram:      c.Overall,
	})
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%-12s %7d %6.1f %5d %7d |",
			r.Workload, r.Placements, r.MeanIterations, r.MaxIterations, r.Unconverged); err != nil {
			return err
		}
		for _, n := range r.Histogram.Counts {
			if _, err := fmt.Fprintf(w, " %5d", n); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteConvergenceCSV writes the study for plotting: one row per workload,
// one column per iteration bucket.
func WriteConvergenceCSV(w io.Writer, c *ConvergenceResult) error {
	if _, err := fmt.Fprintf(w, "workload,placements,meanIterations,maxIterations,unconverged"); err != nil {
		return err
	}
	for _, b := range c.Overall.Bounds {
		if _, err := fmt.Fprintf(w, ",le%g", b); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, ",overflow\n"); err != nil {
		return err
	}
	for _, r := range c.Rows {
		if _, err := fmt.Fprintf(w, "%s,%d,%g,%d,%d",
			r.Workload, r.Placements, r.MeanIterations, r.MaxIterations, r.Unconverged); err != nil {
			return err
		}
		for _, n := range r.Histogram.Counts {
			if _, err := fmt.Fprintf(w, ",%d", n); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
