package eval

import (
	"fmt"
	"io"
	"strings"

	"pandia/internal/bench"
	"pandia/internal/core"
)

// AblationRow reports one workload's median error under each predictor
// configuration of the DESIGN.md ablation study.
type AblationRow struct {
	Workload   string
	Full       float64
	SinglePass float64
	NoBurst    float64
	NoComm     float64
	NoLB       float64
}

// Ablations measures how much each model term contributes: the median
// placement error with the full model versus with individual terms removed
// (the design choices §5 argues for).
func Ablations(h *Harness, entries []bench.Entry) ([]AblationRow, error) {
	configs := []struct {
		name string
		opt  core.Options
		set  func(*AblationRow, float64)
	}{
		{"full", core.Options{}, func(r *AblationRow, v float64) { r.Full = v }},
		{"single-pass", core.Options{SinglePass: true}, func(r *AblationRow, v float64) { r.SinglePass = v }},
		{"no-burstiness", core.Options{DisableBurstiness: true}, func(r *AblationRow, v float64) { r.NoBurst = v }},
		{"no-comm", core.Options{DisableComm: true}, func(r *AblationRow, v float64) { r.NoComm = v }},
		{"no-load-balance", core.Options{DisableLoadBalance: true}, func(r *AblationRow, v float64) { r.NoLB = v }},
	}
	var rows []AblationRow
	for _, e := range entries {
		prof, err := h.Profile(e)
		if err != nil {
			return nil, err
		}
		meas, err := h.MeasureAll(e)
		if err != nil {
			return nil, err
		}
		row := AblationRow{Workload: e.Name}
		for _, cfg := range configs {
			preds, err := core.PredictSweep(h.MD, &prof.Workload, h.Placements(), cfg.opt)
			if err != nil {
				return nil, fmt.Errorf("eval: ablation %s of %s: %w", cfg.name, e.Name, err)
			}
			pred := make([]float64, len(preds))
			for i, p := range preds {
				pred[i] = p.Time
			}
			cfg.set(&row, ComputeMetrics(meas, pred).MedianErr)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderAblations prints the ablation table.
func RenderAblations(w io.Writer, machine string, rows []AblationRow) error {
	title := fmt.Sprintf("Ablations on %s (median error %%)", machine)
	if _, err := fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title))); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-12s %8s %12s %10s %10s %8s\n",
		"workload", "full", "single-pass", "no-burst", "no-comm", "no-lb"); err != nil {
		return err
	}
	var f, sp, nb, nc, nl []float64
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%-12s %8.1f %12.1f %10.1f %10.1f %8.1f\n",
			r.Workload, r.Full, r.SinglePass, r.NoBurst, r.NoComm, r.NoLB); err != nil {
			return err
		}
		f = append(f, r.Full)
		sp = append(sp, r.SinglePass)
		nb = append(nb, r.NoBurst)
		nc = append(nc, r.NoComm)
		nl = append(nl, r.NoLB)
	}
	_, err := fmt.Fprintf(w, "%-12s %8.1f %12.1f %10.1f %10.1f %8.1f\n",
		"median", median(f), median(sp), median(nb), median(nc), median(nl))
	return err
}
