package eval

import (
	"fmt"
	"math"

	"pandia/internal/bench"
	"pandia/internal/placement"
	"pandia/internal/simhw"
	"pandia/internal/stress"
)

// WorkloadErrors is one row of an error summary (one bar group of Fig. 11).
type WorkloadErrors struct {
	Workload    string
	Metrics     Metrics
	BestGap     float64
	PeakThreads int
}

// Summary aggregates an error summary over a workload set on one machine
// (Fig. 11a-d) plus the §6.1 headline numbers.
type Summary struct {
	Machine     string
	Source      string // machine whose workload descriptions were used
	PerWorkload []WorkloadErrors
	// MeanBestGap/MedianBestGap summarise the §6.1 comparison between the
	// fastest predicted and fastest measured placements.
	MeanBestGap   float64
	MedianBestGap float64
	// MedianErr/MedianOffsetErr are medians of the per-workload medians.
	MedianErr       float64
	MedianOffsetErr float64
	// FracPeakBelowMax is the fraction of workloads whose fastest measured
	// placement uses fewer threads than the machine offers.
	FracPeakBelowMax float64
}

// ErrorSummary evaluates every workload on the harness's machine with its
// own profiled description (Fig. 11a-b).
func ErrorSummary(h *Harness, entries []bench.Entry) (*Summary, error) {
	curves := make([]*Curve, len(entries))
	for i, e := range entries {
		c, err := h.CurveFor(e)
		if err != nil {
			return nil, err
		}
		curves[i] = c
	}
	return summarise(h, entries, curves, h.Key), nil
}

// Portability profiles the workloads on the src machine and predicts the
// dst machine's placements with those descriptions (Fig. 11c-d).
func Portability(src, dst *Harness, entries []bench.Entry) (*Summary, error) {
	curves := make([]*Curve, len(entries))
	for i, e := range entries {
		prof, err := src.Profile(e)
		if err != nil {
			return nil, err
		}
		c, err := dst.CurveWith(e, &prof.Workload, prof.Cost)
		if err != nil {
			return nil, err
		}
		curves[i] = c
	}
	return summarise(dst, entries, curves, src.Key), nil
}

// PortabilityRescaled is Portability with the ESTIMA-inspired description
// rescaling applied (core.Workload.RescaledFor): demands that were capped
// by the source machine's capacities are scaled up by the destination's
// headroom, addressing the paper's §8 low-to-high-spec weakness.
func PortabilityRescaled(src, dst *Harness, entries []bench.Entry) (*Summary, error) {
	curves := make([]*Curve, len(entries))
	for i, e := range entries {
		prof, err := src.Profile(e)
		if err != nil {
			return nil, err
		}
		rescaled := prof.Workload.RescaledFor(src.MD, dst.MD, 0)
		c, err := dst.CurveWith(e, rescaled, prof.Cost)
		if err != nil {
			return nil, err
		}
		curves[i] = c
	}
	s := summarise(dst, entries, curves, src.Key)
	s.Source = src.Key + "+rescaled"
	return s, nil
}

func summarise(h *Harness, entries []bench.Entry, curves []*Curve, source string) *Summary {
	s := &Summary{Machine: h.Key, Source: source}
	maxThreads := h.TB.Machine().TotalContexts()
	var gaps, medians, offsets []float64
	below := 0
	for i, c := range curves {
		m := c.Metrics()
		row := WorkloadErrors{
			Workload:    entries[i].Name,
			Metrics:     m,
			BestGap:     c.BestGap(),
			PeakThreads: c.PeakThreads(),
		}
		s.PerWorkload = append(s.PerWorkload, row)
		gaps = append(gaps, row.BestGap)
		medians = append(medians, m.MedianErr)
		offsets = append(offsets, m.OffsetMedian)
		// Count a workload as peaking below the full machine only when its
		// best placement beats the best full-machine placement by more
		// than the measurement noise (2%), so flat plateaus do not count.
		if c.PeaksBelowMax(maxThreads, 0.02) {
			below++
		}
	}
	s.MeanBestGap = mean(gaps)
	s.MedianBestGap = median(gaps)
	s.MedianErr = median(medians)
	s.MedianOffsetErr = median(offsets)
	if len(curves) > 0 {
		s.FracPeakBelowMax = float64(below) / float64(len(curves))
	}
	return s
}

// FourSocketRow is one workload's mean errors in the three placement
// classes of the X2-4 experiment (Fig. 12).
type FourSocketRow struct {
	Workload   string
	TwoSocket  float64
	TwentyCore float64
	Whole      float64
}

// FourSocket reproduces Fig. 12: mean errors on the 4-socket machine for
// placements using at most two sockets, at most twenty cores, and the whole
// machine.
func FourSocket(h *Harness, entries []bench.Entry) ([]FourSocketRow, error) {
	// Partition the evaluation shapes into the three (nested) classes.
	var twoSocketIdx, twentyCoreIdx, allIdx []int
	for i, s := range h.Shapes {
		allIdx = append(allIdx, i)
		if s.SocketsUsed() <= 2 {
			twoSocketIdx = append(twoSocketIdx, i)
		}
		if s.Cores() <= 20 {
			twentyCoreIdx = append(twentyCoreIdx, i)
		}
	}
	subset := func(xs []float64, idx []int) []float64 {
		out := make([]float64, len(idx))
		for i, j := range idx {
			out[i] = xs[j]
		}
		return out
	}
	var rows []FourSocketRow
	for _, e := range entries {
		c, err := h.CurveFor(e)
		if err != nil {
			return nil, err
		}
		rows = append(rows, FourSocketRow{
			Workload:   e.Name,
			TwoSocket:  ComputeMetrics(subset(c.Measured, twoSocketIdx), subset(c.Predicted, twoSocketIdx)).MeanErr,
			TwentyCore: ComputeMetrics(subset(c.Measured, twentyCoreIdx), subset(c.Predicted, twentyCoreIdx)).MeanErr,
			Whole:      ComputeMetrics(subset(c.Measured, allIdx), subset(c.Predicted, allIdx)).MeanErr,
		})
	}
	return rows, nil
}

// TurboPoint is one sample of the Fig. 14 study.
type TurboPoint struct {
	Threads       int
	PerThreadRate float64
}

// TurboCurves are the three lines of Fig. 14: Turbo Boost with idle cores
// truly idle, Turbo Boost with a background load on otherwise-idle cores,
// and Turbo Boost disabled.
type TurboCurves struct {
	TurboIdle       []TurboPoint
	TurboBackground []TurboPoint
	Nominal         []TurboPoint
}

// TurboStudy measures the instruction rate of a CPU-bound loop at every
// thread count (one thread per core up to the core count, then two per
// core), under the three power regimes of Fig. 14.
func TurboStudy(tb *simhw.Testbed) (*TurboCurves, error) {
	topo := tb.Machine()
	out := &TurboCurves{}
	app := stress.App(stress.CPU, tb.L3SizeMB(), 1)
	for n := 1; n <= topo.TotalContexts(); n++ {
		place, err := placement.Spread(topo, n)
		if err != nil {
			return nil, err
		}
		for _, mode := range []struct {
			power simhw.PowerMode
			dst   *[]TurboPoint
		}{
			{simhw.PowerTurbo, &out.TurboIdle},
			{simhw.PowerFilled, &out.TurboBackground},
			{simhw.PowerNominal, &out.Nominal},
		} {
			res, err := tb.Run(simhw.RunConfig{Workload: app, Placement: place, Power: mode.power})
			if err != nil {
				return nil, fmt.Errorf("eval: turbo study at %d threads: %w", n, err)
			}
			*mode.dst = append(*mode.dst, TurboPoint{
				Threads:       n,
				PerThreadRate: res.Sample.Rates().Instr / float64(n),
			})
		}
	}
	return out, nil
}

// SweepRow compares the simple packed/spread sweep baseline against
// Pandia's six profiling runs for one workload (§6.3).
type SweepRow struct {
	Workload string
	// SweepCost and ProfileCost are machine seconds spent exploring.
	SweepCost   float64
	ProfileCost float64
	// CostRatio is SweepCost / ProfileCost (the paper reports 8.0x, 4.2x,
	// 4.0x on the X5-2, X4-2, X3-2).
	CostRatio float64
	// FoundBest reports whether the sweep's fastest placement is exactly
	// the overall fastest measured placement; NearBest tolerates 2% to
	// absorb measurement-noise ties on flat optima.
	FoundBest bool
	NearBest  bool
	// SweepBestGap is how much slower the sweep's best placement is than
	// the overall best, in percent.
	SweepBestGap float64
}

// SweepSummary aggregates the sweep study over a workload set.
type SweepSummary struct {
	Machine        string
	Rows           []SweepRow
	MeanCostRatio  float64
	FoundBestCount int
	NearBestCount  int
}

// SweepStudy reproduces the §6.3 comparison: explore packed and spread
// placements at every thread count, and compare cost and outcome against
// Pandia's profiling.
func SweepStudy(h *Harness, entries []bench.Entry) (*SweepSummary, error) {
	topo := h.TB.Machine()
	sweepKeys := make(map[string]bool)
	for _, s := range placement.SweepShapes(topo) {
		sweepKeys[s.Key()] = true
	}
	out := &SweepSummary{Machine: h.Key}
	var ratios []float64
	for _, e := range entries {
		c, err := h.CurveFor(e)
		if err != nil {
			return nil, err
		}
		var sweepCost float64
		sweepBest, sweepBestKey := math.Inf(1), ""
		trueBest, trueBestKey := math.Inf(1), ""
		for i, s := range c.Shapes {
			k := s.Key()
			if sweepKeys[k] {
				sweepCost += c.Measured[i]
				if c.Measured[i] < sweepBest {
					sweepBest, sweepBestKey = c.Measured[i], k
				}
			}
			if c.Measured[i] < trueBest {
				trueBest, trueBestKey = c.Measured[i], k
			}
		}
		gap := 100 * (sweepBest - trueBest) / trueBest
		row := SweepRow{
			Workload:     e.Name,
			SweepCost:    sweepCost,
			ProfileCost:  c.ProfileCost,
			FoundBest:    sweepBestKey == trueBestKey,
			NearBest:     sweepBestKey == trueBestKey || gap <= 2.0,
			SweepBestGap: gap,
		}
		if c.ProfileCost > 0 {
			row.CostRatio = sweepCost / c.ProfileCost
		}
		out.Rows = append(out.Rows, row)
		ratios = append(ratios, row.CostRatio)
		if row.FoundBest {
			out.FoundBestCount++
		}
		if row.NearBest {
			out.NearBestCount++
		}
	}
	out.MeanCostRatio = mean(ratios)
	return out, nil
}
