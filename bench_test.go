// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (§6), plus the ablation benches called out in
// DESIGN.md and micro-benchmarks of the core components.
//
// Figure benchmarks run reduced configurations (placement-sample caps,
// workload subsets) so `go test -bench=.` completes in minutes; the full
// evaluation is `go run ./cmd/pandia-eval`. Each benchmark reports the
// relevant headline number as a custom metric (median error %, gap %, cost
// ratio) so the paper's rows are visible straight from the bench output.
package pandia

import (
	"sync"
	"testing"

	"pandia/internal/bench"
	"pandia/internal/core"
	"pandia/internal/eval"
	"pandia/internal/faults"
	"pandia/internal/placement"
	"pandia/internal/simhw"
	"pandia/internal/workload"
)

// benchHarness caches eval harnesses across benchmarks: building one
// involves stress runs and placement enumeration that would otherwise
// dominate every measurement.
var (
	benchMu       sync.Mutex
	benchHarness  = map[string]*eval.Harness{}
	benchCapByKey = map[string]int{"x5-2": 400, "x4-2": 300, "x3-2": 300, "x2-4": 300}
)

func harnessFor(b *testing.B, key string) *eval.Harness {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if h, ok := benchHarness[key]; ok {
		return h
	}
	h, err := eval.NewHarness(key, benchCapByKey[key], 1)
	if err != nil {
		b.Fatal(err)
	}
	benchHarness[key] = h
	return h
}

func entriesNamed(b *testing.B, names ...string) []bench.Entry {
	b.Helper()
	out := make([]bench.Entry, 0, len(names))
	for _, n := range names {
		e, err := bench.ByName(n)
		if err != nil {
			b.Fatal(err)
		}
		out = append(out, e)
	}
	return out
}

// BenchmarkFig01MDCurve regenerates Fig. 1: MD's measured-vs-predicted
// placement curve on the X5-2.
func BenchmarkFig01MDCurve(b *testing.B) {
	h := harnessFor(b, "x5-2")
	e := entriesNamed(b, "MD")[0]
	var med float64
	for i := 0; i < b.N; i++ {
		c, err := h.CurveFor(e)
		if err != nil {
			b.Fatal(err)
		}
		med = c.Metrics().MedianErr
	}
	b.ReportMetric(med, "median-err-%")
}

// BenchmarkFig10Curves regenerates a representative slice of Fig. 10 (one
// workload per suite) on the X5-2.
func BenchmarkFig10Curves(b *testing.B) {
	h := harnessFor(b, "x5-2")
	entries := entriesNamed(b, "CG", "Swim", "NPO", "PageRank")
	var med float64
	for i := 0; i < b.N; i++ {
		var meds []float64
		for _, e := range entries {
			c, err := h.CurveFor(e)
			if err != nil {
				b.Fatal(err)
			}
			meds = append(meds, c.Metrics().MedianErr)
		}
		med = meds[len(meds)/2]
	}
	b.ReportMetric(med, "median-err-%")
}

// BenchmarkFig11aErrorsX52 regenerates Fig. 11a's error summary on the
// X5-2 (workload subset).
func BenchmarkFig11aErrorsX52(b *testing.B) {
	benchErrors(b, "x5-2")
}

// BenchmarkFig11bErrorsX32 regenerates Fig. 11b on the X3-2.
func BenchmarkFig11bErrorsX32(b *testing.B) {
	benchErrors(b, "x3-2")
}

func benchErrors(b *testing.B, key string) {
	h := harnessFor(b, key)
	entries := entriesNamed(b, "BT", "CG", "EP", "MG", "NPO", "Wupwise")
	var s *eval.Summary
	for i := 0; i < b.N; i++ {
		var err error
		s, err = eval.ErrorSummary(h, entries)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(s.MedianErr, "median-err-%")
	b.ReportMetric(s.MedianOffsetErr, "median-offset-err-%")
}

// BenchmarkFig11cPortability uses X3-2 workload descriptions on the X5-2.
func BenchmarkFig11cPortability(b *testing.B) {
	benchPortability(b, "x3-2", "x5-2")
}

// BenchmarkFig11dPortability uses X5-2 workload descriptions on the X3-2.
func BenchmarkFig11dPortability(b *testing.B) {
	benchPortability(b, "x5-2", "x3-2")
}

func benchPortability(b *testing.B, src, dst string) {
	hs := harnessFor(b, src)
	hd := harnessFor(b, dst)
	entries := entriesNamed(b, "MD", "CG", "Swim")
	var s *eval.Summary
	for i := 0; i < b.N; i++ {
		var err error
		s, err = eval.Portability(hs, hd, entries)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(s.MedianErr, "median-err-%")
}

// BenchmarkFig12FourSocket regenerates Fig. 12's placement classes on the
// 4-socket X2-4.
func BenchmarkFig12FourSocket(b *testing.B) {
	h := harnessFor(b, "x2-4")
	entries := entriesNamed(b, "CG", "LU", "PageRank")
	var rows []eval.FourSocketRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = eval.FourSocket(h, entries)
		if err != nil {
			b.Fatal(err)
		}
	}
	var whole float64
	for _, r := range rows {
		whole += r.Whole
	}
	b.ReportMetric(whole/float64(len(rows)), "mean-whole-machine-err-%")
}

// BenchmarkFig13aNPOSingle regenerates Fig. 13a: the non-scaling NPO.
func BenchmarkFig13aNPOSingle(b *testing.B) {
	h := harnessFor(b, "x5-2")
	e := bench.NPOSingle()
	var med float64
	for i := 0; i < b.N; i++ {
		c, err := h.CurveFor(e)
		if err != nil {
			b.Fatal(err)
		}
		med = c.Metrics().MedianErr
	}
	b.ReportMetric(med, "median-err-%")
}

// BenchmarkFig13Equake regenerates Fig. 13b-c: equake's broken assumption
// on the small and large machines; the error difference is the headline.
func BenchmarkFig13Equake(b *testing.B) {
	small := harnessFor(b, "x3-2")
	large := harnessFor(b, "x5-2")
	e := bench.Equake()
	var errSmall, errLarge float64
	for i := 0; i < b.N; i++ {
		cs, err := small.CurveFor(e)
		if err != nil {
			b.Fatal(err)
		}
		cl, err := large.CurveFor(e)
		if err != nil {
			b.Fatal(err)
		}
		errSmall = cs.Metrics().MedianErr
		errLarge = cl.Metrics().MedianErr
	}
	b.ReportMetric(errSmall, "x32-median-err-%")
	b.ReportMetric(errLarge, "x52-median-err-%")
}

// BenchmarkFig14Turbo regenerates the Turbo Boost study.
func BenchmarkFig14Turbo(b *testing.B) {
	h := harnessFor(b, "x5-2")
	var tc *eval.TurboCurves
	for i := 0; i < b.N; i++ {
		var err error
		tc, err = eval.TurboStudy(h.TB)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(tc.TurboIdle[0].PerThreadRate/tc.Nominal[0].PerThreadRate, "solo-turbo-boost-x")
}

// BenchmarkTableBestPlacement regenerates the §6.1 best-placement gap.
func BenchmarkTableBestPlacement(b *testing.B) {
	h := harnessFor(b, "x3-2")
	entries := entriesNamed(b, "MD", "CG", "Swim", "NPO")
	var s *eval.Summary
	for i := 0; i < b.N; i++ {
		var err error
		s, err = eval.ErrorSummary(h, entries)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(s.MedianBestGap, "median-best-gap-%")
}

// BenchmarkTablePeakThreads regenerates the §6.1 peak-thread-usage numbers.
func BenchmarkTablePeakThreads(b *testing.B) {
	h := harnessFor(b, "x5-2")
	entries := entriesNamed(b, "MD", "Swim", "EP", "Sort-Join")
	var s *eval.Summary
	for i := 0; i < b.N; i++ {
		var err error
		s, err = eval.ErrorSummary(h, entries)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*s.FracPeakBelowMax, "peak-below-max-%")
}

// BenchmarkTableSweep regenerates the §6.3 sweep-baseline comparison.
func BenchmarkTableSweep(b *testing.B) {
	h := harnessFor(b, "x3-2")
	entries := entriesNamed(b, "MD", "Swim")
	var s *eval.SweepSummary
	for i := 0; i < b.N; i++ {
		var err error
		s, err = eval.SweepStudy(h, entries)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(s.MeanCostRatio, "sweep-cost-ratio-x")
}

// BenchmarkNoiseResilience runs the robustness study: fault-injected
// profiling at a 10% base rate, hardened pipeline versus naive single-shot.
// The headline metrics are the two degradation factors over the fault-free
// baseline error.
func BenchmarkNoiseResilience(b *testing.B) {
	h := harnessFor(b, "x3-2")
	entries := entriesNamed(b, "MD", "CG")
	var n *eval.NoiseResult
	for i := 0; i < b.N; i++ {
		var err error
		n, err = eval.NoiseResilience(h, entries, []float64{0.1}, faults.RobustDefaults(), 2, 42)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(n.Points[0].NaiveMeanErr/n.BaselineErr, "naive-degradation-x")
	b.ReportMetric(n.Points[0].RobustMeanErr/n.BaselineErr, "robust-degradation-x")
}

// ablationMedian computes the median error of one workload's curve with the
// given predictor options.
func ablationMedian(b *testing.B, h *eval.Harness, e bench.Entry, opt core.Options) float64 {
	b.Helper()
	prof, err := h.Profile(e)
	if err != nil {
		b.Fatal(err)
	}
	meas, err := h.MeasureAll(e)
	if err != nil {
		b.Fatal(err)
	}
	topo := h.TB.Machine()
	pred := make([]float64, len(h.Shapes))
	for i, s := range h.Shapes {
		p, err := core.Predict(h.MD, &prof.Workload, s.Expand(topo), opt)
		if err != nil {
			b.Fatal(err)
		}
		pred[i] = p.Time
	}
	return eval.ComputeMetrics(meas, pred).MedianErr
}

// BenchmarkAblationIterations compares the full iterative prediction with a
// single-pass prediction (DESIGN.md ablation 1).
func BenchmarkAblationIterations(b *testing.B) {
	benchAblation(b, core.Options{SinglePass: true}, "single-pass-median-err-%")
}

// BenchmarkAblationLoadBalance drops the load-balancing penalty.
func BenchmarkAblationLoadBalance(b *testing.B) {
	benchAblation(b, core.Options{DisableLoadBalance: true}, "no-lb-median-err-%")
}

// BenchmarkAblationBurstiness drops the core-sharing burstiness term.
func BenchmarkAblationBurstiness(b *testing.B) {
	benchAblation(b, core.Options{DisableBurstiness: true}, "no-burst-median-err-%")
}

// BenchmarkAblationComm drops the inter-socket communication penalty.
func BenchmarkAblationComm(b *testing.B) {
	benchAblation(b, core.Options{DisableComm: true}, "no-comm-median-err-%")
}

func benchAblation(b *testing.B, opt core.Options, metric string) {
	h := harnessFor(b, "x3-2")
	e := entriesNamed(b, "Swim")[0]
	var full, ablated float64
	for i := 0; i < b.N; i++ {
		full = ablationMedian(b, h, e, core.Options{})
		ablated = ablationMedian(b, h, e, opt)
	}
	b.ReportMetric(full, "full-median-err-%")
	b.ReportMetric(ablated, metric)
}

// BenchmarkPredictOnce measures one predictor invocation on a full-machine
// placement (the paper: "a fraction of a second per placement"; here
// microseconds).
func BenchmarkPredictOnce(b *testing.B) {
	h := harnessFor(b, "x5-2")
	e := entriesNamed(b, "CG")[0]
	prof, err := h.Profile(e)
	if err != nil {
		b.Fatal(err)
	}
	place, err := placement.Spread(h.TB.Machine(), h.TB.Machine().TotalContexts())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Predict(h.MD, &prof.Workload, place, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictorReuse measures the steady-state fast path: one pooled
// Predictor re-predicting a full-machine placement, as every sweep worker
// does in its hot loop. The allocation report should read 0 allocs/op.
func BenchmarkPredictorReuse(b *testing.B) {
	h := harnessFor(b, "x5-2")
	e := entriesNamed(b, "CG")[0]
	prof, err := h.Profile(e)
	if err != nil {
		b.Fatal(err)
	}
	place, err := placement.Spread(h.TB.Machine(), h.TB.Machine().TotalContexts())
	if err != nil {
		b.Fatal(err)
	}
	p, err := core.NewPredictor(h.MD, &prof.Workload, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := p.PredictTime(place); err != nil { // warm the scratch
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.PredictTime(place); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictSweep measures the batched fast-path sweep over the
// harness's whole evaluation placement set (the §6.3 scenario: thousands of
// candidate placements per workload).
func BenchmarkPredictSweep(b *testing.B) {
	h := harnessFor(b, "x5-2")
	e := entriesNamed(b, "CG")[0]
	prof, err := h.Profile(e)
	if err != nil {
		b.Fatal(err)
	}
	places := h.Placements()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.PredictSweep(h.MD, &prof.Workload, places, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(places)), "placements")
}

// BenchmarkPredictTimeWarm measures the warm fast path: a pooled Predictor
// with the canonical prediction cache attached re-predicting a placement it
// has already solved, so every iteration is a cache hit (DESIGN.md §12).
// The allocation report should read 0 allocs/op.
func BenchmarkPredictTimeWarm(b *testing.B) {
	h := harnessFor(b, "x5-2")
	e := entriesNamed(b, "CG")[0]
	prof, err := h.Profile(e)
	if err != nil {
		b.Fatal(err)
	}
	place, err := placement.Spread(h.TB.Machine(), h.TB.Machine().TotalContexts())
	if err != nil {
		b.Fatal(err)
	}
	p, err := core.NewPredictor(h.MD, &prof.Workload, core.Options{Cache: core.NewPredictionCache(0)})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := p.PredictTime(place); err != nil { // populate the cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.PredictTime(place); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheHit measures steady-state cache-hit throughput across a
// whole placement set: the cache is populated by one cold sweep, then every
// lookup hits. Key derivation (the canonical content hash) dominates, so
// this bounds what a fully warmed sweep costs per placement.
func BenchmarkCacheHit(b *testing.B) {
	h := harnessFor(b, "x5-2")
	e := entriesNamed(b, "CG")[0]
	prof, err := h.Profile(e)
	if err != nil {
		b.Fatal(err)
	}
	places := h.Placements()
	cache := core.NewPredictionCache(0)
	p, err := core.NewPredictor(h.MD, &prof.Workload, core.Options{Cache: cache})
	if err != nil {
		b.Fatal(err)
	}
	for _, place := range places { // populate the cache
		if _, err := p.PredictTime(place); err != nil {
			b.Fatal(err)
		}
	}
	before := cache.Stats()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.PredictTime(places[i%len(places)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	after := cache.Stats()
	timed := core.CacheStats{Hits: after.Hits - before.Hits, Misses: after.Misses - before.Misses}
	b.ReportMetric(100*timed.HitRate(), "hit-rate-%")
}

// BenchmarkPredictSweepWarm measures a full fast-path sweep served from a
// populated prediction cache — the steady state of repeated Recommend or
// eval sweeps over the same workload. This is the sweep-throughput number
// the cache layer buys (every hit bit-identical to the cold solve).
func BenchmarkPredictSweepWarm(b *testing.B) {
	h := harnessFor(b, "x5-2")
	e := entriesNamed(b, "CG")[0]
	prof, err := h.Profile(e)
	if err != nil {
		b.Fatal(err)
	}
	places := h.Placements()
	opt := core.Options{Cache: core.NewPredictionCache(0)}
	if _, err := core.PredictSweep(h.MD, &prof.Workload, places, opt); err != nil { // populate the cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.PredictSweep(h.MD, &prof.Workload, places, opt); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(places)), "placements")
}

// BenchmarkSweepPruned measures the Recommend-style pruned sweep over the
// harness's whole evaluation placement set at the default target fraction:
// placements whose Amdahl bound cannot reach 95% of the incumbent are
// skipped without solving.
func BenchmarkSweepPruned(b *testing.B) {
	h := harnessFor(b, "x5-2")
	e := entriesNamed(b, "CG")[0]
	prof, err := h.Profile(e)
	if err != nil {
		b.Fatal(err)
	}
	places := h.Placements()
	var stats core.SweepStats
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st, err := core.PredictSweepPruned(h.MD, &prof.Workload, places, core.Options{}, 0.95)
		if err != nil {
			b.Fatal(err)
		}
		stats = st
	}
	b.ReportMetric(float64(len(places)), "placements")
	b.ReportMetric(100*stats.PruneRate(), "prune-rate-%")
}

// BenchmarkTestbedRun measures one ground-truth simulation run.
func BenchmarkTestbedRun(b *testing.B) {
	h := harnessFor(b, "x5-2")
	e := entriesNamed(b, "CG")[0]
	place, err := placement.Spread(h.TB.Machine(), h.TB.Machine().TotalContexts())
	if err != nil {
		b.Fatal(err)
	}
	cfg := simhw.RunConfig{Workload: e.Truth, Placement: place}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.TB.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProfileSixRuns measures the six-run workload profiling pipeline.
func BenchmarkProfileSixRuns(b *testing.B) {
	h := harnessFor(b, "x3-2")
	e := entriesNamed(b, "CG")[0]
	p := &workload.Profiler{TB: h.TB, MD: h.MD}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Profile(e.Truth); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnumeratePlacements measures canonical placement enumeration for
// the largest 2-socket machine.
func BenchmarkEnumeratePlacements(b *testing.B) {
	h := harnessFor(b, "x5-2")
	topo := h.TB.Machine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := placement.Enumerate(topo); len(got) != 18144 {
			b.Fatalf("enumerated %d shapes", len(got))
		}
	}
}
