// Package pandia is the public API of this reproduction of "Pandia:
// comprehensive contention-sensitive thread placement" (EuroSys 2017).
//
// Pandia predicts the performance of an in-memory parallel workload across
// thread counts and thread placements on a multi-socket machine, from a
// machine description (measured once per machine with stress applications,
// §3 of the paper), a workload description (measured with six profiling
// runs, §4), and an iterative contention/communication/load-balance model
// (§5).
//
// Because Go exposes neither hardware performance counters nor thread
// pinning, the hardware substrate here is a simulated testbed
// (internal/simhw) modelling the paper's Intel Xeon machines; every Pandia
// component observes it exactly as it would observe real hardware — through
// run times and counter values. See DESIGN.md for the substitution
// rationale.
//
// Typical use:
//
//	sys, _ := pandia.NewSystem("x5-2")
//	bench, _ := pandia.BenchmarkByName("MD")
//	prof, _ := sys.Profile(bench.Truth)
//	rec, _ := sys.Recommend(&prof.Workload, 0.95)
//	fmt.Println(rec.Best, rec.BestPrediction.Speedup)
package pandia

import (
	"fmt"
	"math"
	"sort"

	"pandia/internal/bench"
	"pandia/internal/core"
	"pandia/internal/machine"
	"pandia/internal/placement"
	"pandia/internal/simhw"
	"pandia/internal/topology"
	"pandia/internal/workload"
)

// Re-exported types forming the public surface.
type (
	// MachineDescription is Pandia's measured model of one machine (§3).
	MachineDescription = machine.Description
	// WorkloadDescription is Pandia's model of one workload (§4).
	WorkloadDescription = core.Workload
	// Prediction is the output of the performance predictor (§5).
	Prediction = core.Prediction
	// PredictOptions tunes the predictor; the zero value is the paper's
	// configuration.
	PredictOptions = core.Options
	// Placement assigns workload threads to hardware contexts.
	Placement = placement.Placement
	// Shape is a canonical placement (per-socket core occupancies).
	Shape = placement.Shape
	// Machine is the topology of a machine.
	Machine = topology.Machine
	// Context identifies one hardware thread context.
	Context = topology.Context
	// WorkloadSpec is a synthetic workload's ground-truth behaviour on the
	// simulated testbed (the stand-in for a real binary).
	WorkloadSpec = simhw.WorkloadTruth
	// Benchmark is one entry of the paper's 22-workload evaluation zoo.
	Benchmark = bench.Entry
	// Profile is the outcome of the six profiling runs.
	Profile = workload.Profile
	// PlacedWorkload pairs a workload description with a placement, for
	// joint co-scheduling prediction.
	PlacedWorkload = core.PlacedWorkload
	// CoPrediction is the joint prediction for co-scheduled workloads.
	CoPrediction = core.CoPrediction
	// Predictor is a reusable, allocation-free prediction pipeline for one
	// workload on one machine (validate once, predict many placements).
	Predictor = core.Predictor
	// TimePrediction is the fast path's value-typed result: time and
	// speedup without the per-thread detail vectors.
	TimePrediction = core.TimePrediction
	// PredictionCache memoizes fast-path predictions under a canonical
	// content hash; hits are bit-identical to cold solves (DESIGN.md §12).
	PredictionCache = core.PredictionCache
	// CacheStats is a prediction cache's hit/miss/eviction traffic.
	CacheStats = core.CacheStats
	// SweepStats is a pruned sweep's evaluated/pruned split.
	SweepStats = core.SweepStats
)

// Models lists the available simulated machines: the paper's evaluation
// platforms plus the worked-example toy.
func Models() []string {
	var out []string
	for k := range simhw.Truths() {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Benchmarks returns the paper's 22-workload evaluation zoo.
func Benchmarks() []Benchmark { return bench.Zoo() }

// AllBenchmarks returns the zoo plus the special cases (equake,
// NPO-single).
func AllBenchmarks() []Benchmark { return bench.All() }

// BenchmarkByName looks up a zoo workload by its paper name.
func BenchmarkByName(name string) (Benchmark, error) { return bench.ByName(name) }

// System binds a simulated machine to its measured description: the handle
// through which workloads are profiled, predicted, and (on the testbed)
// actually run.
type System struct {
	tb *simhw.Testbed
	md *machine.Description
	// cache memoizes fast-path predictions across Recommend calls (and any
	// sweep the caller routes through it). Keys hash the full machine and
	// workload content, so hits are always bit-identical to cold solves.
	cache *core.PredictionCache
}

// NewSystem builds a system for one of the preset machine models
// (see Models): the testbed is created and its machine description measured
// with the stress applications.
func NewSystem(model string) (*System, error) {
	truth, ok := simhw.Truths()[model]
	if !ok {
		return nil, fmt.Errorf("pandia: unknown machine model %q (have %v)", model, Models())
	}
	return NewSystemFromTruth(truth)
}

// NewSystemFromFile builds a system from a machine-truth JSON file (see
// simhw.SaveTruth for the format), letting users define custom simulated
// machines.
func NewSystemFromFile(path string) (*System, error) {
	truth, err := simhw.LoadTruth(path)
	if err != nil {
		return nil, err
	}
	return NewSystemFromTruth(truth)
}

// NewSystemFromTruth builds a system for a custom simulated machine.
func NewSystemFromTruth(truth simhw.MachineTruth) (*System, error) {
	tb, err := simhw.NewTestbed(truth)
	if err != nil {
		return nil, err
	}
	md, err := machine.Describe(tb)
	if err != nil {
		return nil, err
	}
	return &System{tb: tb, md: md, cache: core.NewPredictionCache(0)}, nil
}

// PredictionCacheStats reports the system prediction cache's lifetime
// traffic.
func (s *System) PredictionCacheStats() CacheStats { return s.cache.Stats() }

// InvalidatePredictions drops every cached prediction. It is never needed
// for correctness — the canonical keys stop matching as soon as the machine
// description or a workload is mutated — but reclaims the memory in bulk.
func (s *System) InvalidatePredictions() { s.cache.Invalidate() }

// Machine returns the system's topology.
func (s *System) Machine() Machine { return s.tb.Machine() }

// Description returns the measured machine description.
func (s *System) Description() *MachineDescription { return s.md }

// Testbed exposes the underlying simulated hardware for measurement
// (ground-truth runs); prediction code never needs it.
func (s *System) Testbed() *simhw.Testbed { return s.tb }

// Profile runs the six profiling runs of §4 for the workload and returns
// its description plus the run records.
func (s *System) Profile(spec WorkloadSpec) (*Profile, error) {
	return (&workload.Profiler{TB: s.tb, MD: s.md}).Profile(spec)
}

// Predict predicts the workload's performance for one placement (§5).
func (s *System) Predict(w *WorkloadDescription, p Placement, opt PredictOptions) (*Prediction, error) {
	return core.Predict(s.md, w, p, opt)
}

// PredictShape predicts the workload's performance for a canonical shape.
func (s *System) PredictShape(w *WorkloadDescription, shape Shape, opt PredictOptions) (*Prediction, error) {
	if err := shape.Validate(s.tb.Machine()); err != nil {
		return nil, err
	}
	return core.Predict(s.md, w, shape.Expand(s.tb.Machine()), opt)
}

// NewPredictor builds a reusable predictor for the workload on this system:
// inputs are validated once, and every subsequent Predict or PredictTime
// call reuses the engine's scratch. PredictTime performs zero heap
// allocations in the steady state, which is what makes sweeping thousands
// of candidate placements cheap (§6.3).
func (s *System) NewPredictor(w *WorkloadDescription, opt PredictOptions) (*Predictor, error) {
	return core.NewPredictor(s.md, w, opt)
}

// PredictSweep predicts every placement on the fast path with per-worker
// pooled predictors, returning results aligned with places.
func (s *System) PredictSweep(w *WorkloadDescription, places []Placement, opt PredictOptions) ([]TimePrediction, error) {
	return core.PredictSweep(s.md, w, places, opt)
}

// PredictCoSchedule jointly predicts several workloads sharing the machine
// (the paper's §8 extension): each keeps its own scaling and
// synchronisation behaviour while all press on the same resource loads.
func (s *System) PredictCoSchedule(jobs []PlacedWorkload, opt PredictOptions) (*CoPrediction, error) {
	return core.PredictCoSchedule(s.md, jobs, opt)
}

// Measure executes the workload on the testbed with the given placement and
// returns the measured time (the ground truth a real deployment would
// observe).
func (s *System) Measure(spec WorkloadSpec, p Placement) (float64, error) {
	res, err := s.tb.Run(simhw.RunConfig{Workload: spec, Placement: p})
	if err != nil {
		return 0, err
	}
	return res.Time, nil
}

// Shapes enumerates the machine's canonical placement space, optionally
// sampled down to at most maxShapes (0 = exhaustive).
func (s *System) Shapes(maxShapes int) []Shape {
	shapes := placement.Enumerate(s.tb.Machine())
	if maxShapes > 0 {
		shapes = placement.Sample(shapes, maxShapes, 1)
	}
	return shapes
}

// Recommendation is the output of Recommend: the placement predicted
// fastest, and the smallest placement predicted to reach the target
// fraction of that performance — the paper's resource-saving use case
// ("limiting a workload to a small number of cores when its scaling is
// poor", §1).
type Recommendation struct {
	// Best is the fastest predicted placement.
	Best Shape
	// BestPrediction is its prediction.
	BestPrediction *Prediction
	// Minimal is the placement using the fewest hardware contexts (ties:
	// fewest cores, then sockets) whose predicted speedup is at least
	// TargetFraction of the best.
	Minimal Shape
	// MinimalPrediction is its prediction.
	MinimalPrediction *Prediction
	// TargetFraction echoes the requested fraction.
	TargetFraction float64
	// Sweep reports how much of the placement space the dominance bound let
	// the search skip (DESIGN.md §12). Pruning never changes the selected
	// shapes: a pruned placement's speedup is provably below the target.
	Sweep SweepStats
}

// Recommend searches the canonical placement space (sampled to at most
// 4000 shapes on large machines) for the fastest predicted placement and
// the minimal placement achieving targetFraction of its performance.
// targetFraction 0 defaults to 0.95.
func (s *System) Recommend(w *WorkloadDescription, targetFraction float64) (*Recommendation, error) {
	if targetFraction <= 0 {
		targetFraction = 0.95
	}
	if targetFraction > 1 {
		return nil, fmt.Errorf("pandia: target fraction %g above 1", targetFraction)
	}
	shapes := s.Shapes(4000)
	topo := s.tb.Machine()

	// Sweep on the fast path (speedups only) through the system prediction
	// cache, pruning placements whose Amdahl bound cannot reach
	// targetFraction of the incumbent best, then run the full-detail
	// prediction just for the two winning shapes. PredictTime's Speedup is
	// bit-identical to Predict's and pruned placements provably miss both
	// the argmax and the target cut, so the selection is unchanged.
	places := make([]Placement, len(shapes))
	for i, shape := range shapes {
		places[i] = shape.Expand(topo)
	}
	times, sweep, err := core.PredictSweepPruned(s.md, w, places, core.Options{Cache: s.cache}, targetFraction)
	if err != nil {
		return nil, err
	}

	rec := &Recommendation{TargetFraction: targetFraction, Sweep: sweep}
	best := math.Inf(-1)
	bestIdx := -1
	for i := range shapes {
		if times[i].Speedup > best {
			best = times[i].Speedup
			bestIdx = i
		}
	}
	target := best * targetFraction
	bestCost := [3]int{1 << 30, 1 << 30, 1 << 30}
	minIdx := -1
	for i, shape := range shapes {
		if times[i].Speedup < target {
			continue
		}
		cost := [3]int{shape.Threads(), shape.Cores(), shape.SocketsUsed()}
		if less3(cost, bestCost) {
			bestCost = cost
			minIdx = i
		}
	}
	if bestIdx >= 0 {
		rec.Best = shapes[bestIdx]
		if rec.BestPrediction, err = core.Predict(s.md, w, places[bestIdx], core.Options{}); err != nil {
			return nil, err
		}
	}
	if minIdx >= 0 {
		rec.Minimal = shapes[minIdx]
		if rec.MinimalPrediction, err = core.Predict(s.md, w, places[minIdx], core.Options{}); err != nil {
			return nil, err
		}
	}
	return rec, nil
}

func less3(a, b [3]int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// LoadWorkloadDescription reads a workload description from a JSON file
// written by WorkloadDescription.Save.
func LoadWorkloadDescription(path string) (*WorkloadDescription, error) {
	return core.LoadWorkload(path)
}

// ParseShape parses the CLI shape syntax, e.g. "2x2+3x1/4x1".
func ParseShape(s string) (Shape, error) { return placement.ParseShape(s) }

// FormatShape renders a shape in ParseShape's syntax.
func FormatShape(s Shape) string { return placement.FormatShape(s) }
